//! Tier 2: intraprocedural lock-order analysis — the static deadlock
//! detector.
//!
//! For every function in non-test code we simulate the token stream,
//! tracking which mutex guards are held at each point:
//!
//! * an acquisition is `lock_unpoisoned(&path.to.lock)` or
//!   `<recv>.lock()`; the lock's identity is the last field/static
//!   identifier of the operand (`&self.inner` → `inner`);
//! * `let g = <acquisition>;` (possibly through `.unwrap()`-style
//!   adapters) binds a guard, held until its block closes or an
//!   explicit `drop(g)`;
//! * a chained acquisition (`lock_unpoisoned(&q).recv()`) is a
//!   temporary, held only to the end of the statement.
//!
//! Acquiring lock `b` while holding `a` emits the edge `a → b` into
//! the global lock-order graph; a cycle in that graph means two code
//! paths acquire the same locks in opposite orders — a deadlock the
//! schedule can realise. Identity is by *name*, which deliberately
//! merges every `state` field across sessions: coarser than alias
//! analysis, but safe for this codebase's naming discipline and
//! simple enough to audit by eye.

use crate::lexer::{Tok, Token};
use crate::lints::{Finding, Severity, LOCK_ORDER_CYCLE};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Where an edge was observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    pub file: String,
    pub func: String,
    pub line: u32,
}

/// The global lock-order graph: `(held, acquired) → sites`.
#[derive(Debug, Default)]
pub struct LockGraph {
    pub edges: BTreeMap<(String, String), Vec<Site>>,
}

impl LockGraph {
    fn add_edge(&mut self, held: &str, acquired: &str, site: Site) {
        // Same-name self-edges are suppressed: with name-level lock
        // identity they are usually two different instances (one
        // session's `state` vs another's), not reacquisition.
        if held == acquired {
            return;
        }
        self.edges.entry((held.to_string(), acquired.to_string())).or_default().push(site);
    }

    /// All lock names appearing in the graph.
    pub fn nodes(&self) -> BTreeSet<&str> {
        self.edges.keys().flat_map(|(a, b)| [a.as_str(), b.as_str()]).collect()
    }

    /// Detects cycles with an iterative three-colour DFS over the
    /// (deterministically ordered) adjacency; each distinct cycle
    /// yields one error-severity finding naming the full path.
    pub fn cycle_findings(&self) -> Vec<Finding> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in self.edges.keys() {
            adj.entry(a).or_default().push(b);
        }
        let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white 1 grey 2 black
        let mut findings = Vec::new();
        let nodes: Vec<&str> = self.nodes().into_iter().collect();
        for &root in &nodes {
            if color.get(root).copied().unwrap_or(0) != 0 {
                continue;
            }
            // Stack of (node, next-child-index); `path` mirrors it.
            let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
            let mut path: Vec<&str> = vec![root];
            color.insert(root, 1);
            while !stack.is_empty() {
                let (node, child) = {
                    let top = stack.last_mut().expect("stack checked non-empty");
                    let c = top.1;
                    top.1 += 1;
                    (top.0, c)
                };
                let next = adj.get(node).and_then(|c| c.get(child).copied());
                match next {
                    None => {
                        color.insert(node, 2);
                        stack.pop();
                        path.pop();
                    }
                    Some(n) => match color.get(n).copied().unwrap_or(0) {
                        0 => {
                            color.insert(n, 1);
                            stack.push((n, 0));
                            path.push(n);
                        }
                        1 => {
                            let start = path.iter().position(|&p| p == n).unwrap_or(0);
                            findings.push(self.cycle_finding(&path[start..], n));
                        }
                        _ => {}
                    },
                }
            }
        }
        findings
    }

    fn cycle_finding(&self, cycle: &[&str], back_to: &str) -> Finding {
        let mut route = cycle.join(" -> ");
        route.push_str(" -> ");
        route.push_str(back_to);
        // Attribute the finding to the edge that closes the cycle.
        let site = self
            .edges
            .get(&(cycle[cycle.len() - 1].to_string(), back_to.to_string()))
            .and_then(|s| s.first());
        let mut sites: Vec<String> = Vec::new();
        for w in cycle.windows(2) {
            if let Some(s) = self.edges.get(&(w[0].to_string(), w[1].to_string())) {
                if let Some(first) = s.first() {
                    sites.push(format!("{}->{} at {}:{}", w[0], w[1], first.file, first.line));
                }
            }
        }
        Finding {
            lint: LOCK_ORDER_CYCLE,
            file: site.map(|s| s.file.clone()).unwrap_or_default(),
            line: site.map(|s| s.line).unwrap_or(0),
            severity: Severity::Error,
            message: format!(
                "lock-order cycle {route}: opposite acquisition orders can deadlock \
                 [{}]",
                sites.join("; ")
            ),
        }
    }
}

/// Scans one file's functions into the graph. Test code is excluded:
/// tests intentionally hold fixture locks around arbitrary calls and
/// alias lock names across harnesses.
pub fn scan_file(file: &SourceFile, graph: &mut LockGraph) {
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        let is_fn = matches!(&toks[i].tok, Tok::Ident(s) if s == "fn");
        if !is_fn {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        if file.is_test_line(toks[i].line) {
            i += 2;
            continue;
        }
        // Find the body `{` (paren-depth 0, past signature + where).
        let mut j = i + 2;
        let mut paren = 0i32;
        while j < toks.len() {
            match toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                Tok::Punct('{') if paren == 0 => break,
                Tok::Punct(';') if paren == 0 => break, // trait method decl
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || toks[j].tok == Tok::Punct(';') {
            i = j + 1;
            continue;
        }
        let body_end = matching_brace(toks, j);
        scan_fn(&file.rel_path, name, &toks[j..body_end], graph);
        i = body_end;
    }
}

fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

struct Guard {
    var: String,
    lock: String,
    depth: i32,
}

/// Simulates one function body (`toks[0]` is its `{`).
fn scan_fn(file: &str, func: &str, toks: &[Token], graph: &mut LockGraph) {
    let mut held: Vec<Guard> = Vec::new();
    let mut transients: Vec<String> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_start = 0usize;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                stmt_start = i + 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                held.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
                i += 1;
            }
            Tok::Punct(';') => {
                transients.clear();
                stmt_start = i + 1;
                i += 1;
            }
            Tok::Ident(s) if s == "drop" && punct(toks.get(i + 1), '(') => {
                if let Some(Tok::Ident(v)) = toks.get(i + 2).map(|t| &t.tok) {
                    if punct(toks.get(i + 3), ')') {
                        held.retain(|g| &g.var != v);
                        i += 4;
                        continue;
                    }
                }
                i += 1;
            }
            _ => {
                if let Some((lock, after)) = acquisition_at(toks, i) {
                    let line = toks[i].line;
                    for g in &held {
                        graph.add_edge(&g.lock, &lock, site(file, func, line));
                    }
                    for t in &transients {
                        graph.add_edge(t, &lock, site(file, func, line));
                    }
                    // Skip `.unwrap()` / `.expect(…)` / `.unwrap_or_else(…)`
                    // adapters, then decide binding vs temporary.
                    let end = skip_adapters(toks, after);
                    if punct(toks.get(end), ';') {
                        if let Some(var) = let_binding_var(&toks[stmt_start..i]) {
                            held.push(Guard { var, lock, depth });
                            i = end;
                            continue;
                        }
                    }
                    transients.push(lock);
                    i = after;
                } else {
                    i += 1;
                }
            }
        }
    }
}

fn site(file: &str, func: &str, line: u32) -> Site {
    Site { file: file.to_string(), func: func.to_string(), line }
}

fn punct(t: Option<&Token>, c: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Recognises an acquisition starting at `i`; returns the lock name
/// and the index just past the acquisition call.
fn acquisition_at(toks: &[Token], i: usize) -> Option<(String, usize)> {
    match &toks[i].tok {
        // `lock_unpoisoned(<operand>)` — free call or method form.
        Tok::Ident(s) if s == "lock_unpoisoned" && punct(toks.get(i + 1), '(') => {
            let close = matching_paren(toks, i + 1);
            let lock = last_ident(&toks[i + 2..close])?;
            Some((lock, close + 1))
        }
        // `<recv>.lock()`
        Tok::Punct('.')
            if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "lock")
                && punct(toks.get(i + 2), '(')
                && punct(toks.get(i + 3), ')') =>
        {
            let lock = receiver_last_ident(toks, i)?;
            Some((lock, i + 4))
        }
        _ => None,
    }
}

fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Last identifier of an operand expression — the field/static name
/// that identifies the lock (`&self.inner` → `inner`).
fn last_ident(toks: &[Token]) -> Option<String> {
    toks.iter().rev().find_map(|t| match &t.tok {
        Tok::Ident(s) => Some(s.clone()),
        _ => None,
    })
}

/// The final field/static identifier of the receiver before `.lock()`:
/// the token just before the dot, or — for `f(…).lock()` — the last
/// identifier inside the call.
fn receiver_last_ident(toks: &[Token], dot: usize) -> Option<String> {
    match toks.get(dot.checked_sub(1)?).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.clone()),
        Some(Tok::Punct(')')) => {
            let mut depth = 0i32;
            let mut j = dot - 1;
            loop {
                match toks[j].tok {
                    Tok::Punct(')') => depth += 1,
                    Tok::Punct('(') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j = j.checked_sub(1)?;
            }
            last_ident(&toks[j..dot])
        }
        _ => None,
    }
}

/// Skips result adapters (`.unwrap()`, `.expect(…)`,
/// `.unwrap_or_else(…)`) after an acquisition; returns the index of
/// the first token past them.
fn skip_adapters(toks: &[Token], mut i: usize) -> usize {
    const ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];
    loop {
        let is_adapter = punct(toks.get(i), '.')
            && matches!(toks.get(i + 1).map(|t| &t.tok),
                Some(Tok::Ident(m)) if ADAPTERS.contains(&m.as_str()))
            && punct(toks.get(i + 2), '(');
        if !is_adapter {
            return i;
        }
        i = matching_paren(toks, i + 2) + 1;
    }
}

/// If a statement prefix is `let [mut] name =`, returns `name`.
fn let_binding_var(stmt: &[Token]) -> Option<String> {
    let mut it = stmt.iter();
    let first = it.next()?;
    if !matches!(&first.tok, Tok::Ident(s) if s == "let") {
        return None;
    }
    let mut next = it.next()?;
    if matches!(&next.tok, Tok::Ident(s) if s == "mut") {
        next = it.next()?;
    }
    let Tok::Ident(name) = &next.tok else { return None };
    // The `=` must follow (possibly after a type ascription).
    if it.any(|t| t.tok == Tok::Punct('=')) {
        Some(name.clone())
    } else {
        None
    }
}
