//! The lint registry: stable IDs, severities and allowlist policy.
//!
//! Policy lives here, in one table, so DESIGN.md §15 has a single
//! thing to mirror. Each allowlist names crates whose *job* is the
//! thing the lint forbids elsewhere (e.g. `leaps-obs` owns the real
//! clock, `leaps-par` owns thread spawning); everything else needs an
//! in-line `lint:allow` with a written reason.

use std::cmp::Ordering;

/// Stable lint identifiers — these appear in suppression comments and
/// in `results/LINT_baseline.json`, so they must never be renamed.
pub const LOCK_UNWRAP: &str = "lock-unwrap";
pub const RAW_CLOCK: &str = "raw-clock";
pub const STRAY_SPAWN: &str = "stray-spawn";
pub const HASH_ITER_ORDER: &str = "hash-iter-order";
pub const UNSAFE_BLOCK: &str = "unsafe-block";
pub const METRIC_VOCAB: &str = "metric-vocab";
pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
pub const BAD_SUPPRESSION: &str = "bad-suppression";

pub const ALL_LINTS: &[&str] = &[
    LOCK_UNWRAP,
    RAW_CLOCK,
    STRAY_SPAWN,
    HASH_ITER_ORDER,
    UNSAFE_BLOCK,
    METRIC_VOCAB,
    LOCK_ORDER_CYCLE,
    BAD_SUPPRESSION,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint finding, pinned to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub lint: &'static str,
    pub file: String,
    pub line: u32,
    pub severity: Severity,
    pub message: String,
}

impl Ord for Finding {
    fn cmp(&self, other: &Self) -> Ordering {
        (&self.file, self.line, self.lint, &self.message).cmp(&(
            &other.file,
            other.line,
            other.lint,
            &other.message,
        ))
    }
}

impl PartialOrd for Finding {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-lint policy consulted by the token lints.
pub struct Policy {
    /// Crates where the lint does not apply at all.
    pub allowed_crates: &'static [&'static str],
    /// Whether test code (files under `tests/`, `#[cfg(test)]`
    /// items) is exempt.
    pub skip_tests: bool,
    pub severity: Severity,
}

/// Looks up the policy for a token-level lint.
pub fn policy(lint: &str) -> Policy {
    match lint {
        // Poison-tolerance applies to tests too: a panicking test
        // thread must not wedge its harness via a poisoned lock.
        LOCK_UNWRAP => {
            Policy { allowed_crates: &[], skip_tests: false, severity: Severity::Warning }
        }
        // `leaps-obs` owns the real clock; `leaps-bench` reports
        // human wall-time. Tests are exempt: liveness deadlines in
        // tests must track real time, not the swappable clock.
        RAW_CLOCK => Policy {
            allowed_crates: &["leaps-obs", "leaps-bench"],
            skip_tests: true,
            severity: Severity::Warning,
        },
        // `leaps-par` owns supervised spawning; `leaps-serve` spawns
        // named daemon/connection threads through std::thread::Builder.
        STRAY_SPAWN => Policy {
            allowed_crates: &["leaps-par", "leaps-serve"],
            skip_tests: true,
            severity: Severity::Warning,
        },
        // Bit-identity only matters on result paths, which tests are
        // not; test assertions iterate maps freely.
        HASH_ITER_ORDER => {
            Policy { allowed_crates: &[], skip_tests: true, severity: Severity::Warning }
        }
        UNSAFE_BLOCK => {
            Policy { allowed_crates: &[], skip_tests: false, severity: Severity::Error }
        }
        // `leaps-obs` defines the macros and exercises them with
        // scratch names in its own tests/docs.
        METRIC_VOCAB => Policy {
            allowed_crates: &["leaps-obs"],
            skip_tests: false,
            severity: Severity::Warning,
        },
        _ => Policy { allowed_crates: &[], skip_tests: false, severity: Severity::Error },
    }
}
