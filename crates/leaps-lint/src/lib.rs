//! `leaps-lint` — the workspace invariant checker.
//!
//! The LEAPS paper is "statistical learning *guided by program
//! analysis*"; this crate turns program analysis on the codebase
//! itself. It lexes every Rust source file in the workspace (no
//! `syn`, no external deps — the build must work offline) and runs
//! two analysis tiers over the token streams:
//!
//! 1. **Token-level invariant lints** ([`token_lints`]) — each
//!    enforces one cross-crate rule established by an earlier PR:
//!    poison-tolerant locking, the single swappable clock, supervised
//!    spawning, deterministic iteration in result paths, no `unsafe`,
//!    and the dotted metric vocabulary (DESIGN.md §14).
//! 2. **Lock-order analysis** ([`lockorder`]) — an intraprocedural
//!    scan that extracts per-function guard acquisition sequences by
//!    field/static name, merges them into the global lock-order
//!    graph, and fails on cycles: a static deadlock detector for
//!    `leaps-serve`'s registry/session/writer locks and `leaps-par`'s
//!    shard queues.
//!
//! Findings can be suppressed in-line with
//! `// lint:allow(<lint-id>): <reason>` — the reason is mandatory; a
//! reason-less suppression is itself an error-severity finding
//! (`bad-suppression`). See DESIGN.md §15 for the invariant table.

pub mod lexer;
pub mod lints;
pub mod lockorder;
pub mod report;
pub mod source;
pub mod token_lints;
pub mod vocab;
pub mod walker;

use lints::Finding;
use source::SourceFile;

/// Outcome of analysing a set of files: the surviving findings, the
/// suppressions that fired (for reporting), and the lock-order graph.
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<SuppressedFinding>,
    pub lock_graph: lockorder::LockGraph,
}

/// A finding that was silenced by a `lint:allow` comment; retained so
/// reports can show what is being waived and why.
pub struct SuppressedFinding {
    pub finding: Finding,
    pub reason: String,
}

/// Runs every lint tier over `files` and partitions the results into
/// live findings and suppressed ones. Findings are returned sorted by
/// (file, line, lint) so output is deterministic.
pub fn analyze(files: &[SourceFile]) -> Analysis {
    let mut raw: Vec<Finding> = Vec::new();
    for file in files {
        token_lints::check_file(file, files, &mut raw);
        raw.extend(source::check_suppression_hygiene(file));
    }
    let mut lock_graph = lockorder::LockGraph::default();
    for file in files {
        lockorder::scan_file(file, &mut lock_graph);
    }
    raw.extend(lock_graph.cycle_findings());

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        let sup = files
            .iter()
            .find(|s| s.rel_path == f.file)
            .and_then(|s| s.suppression_for(f.lint, f.line));
        match sup {
            // A reason-less suppression must not silence the finding
            // it targets: surface both.
            Some(s) if !s.reason.is_empty() => {
                suppressed.push(SuppressedFinding { finding: f, reason: s.reason.clone() });
            }
            _ => findings.push(f),
        }
    }
    findings.sort();
    suppressed.sort_by(|a, b| a.finding.cmp(&b.finding));
    Analysis { findings, suppressed, lock_graph }
}
