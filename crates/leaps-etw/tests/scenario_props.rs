//! Property tests for the simulation substrate: dataset generation must
//! uphold its invariants for arbitrary parameters and seeds.

use leaps_etw::event::Provenance;
use leaps_etw::scenario::{GenParams, Scenario};
use proptest::prelude::*;

fn any_scenario() -> impl Strategy<Value = Scenario> {
    prop::sample::select(Scenario::all())
}

fn small_params() -> impl Strategy<Value = GenParams> {
    (50usize..200, 50usize..200, 20usize..100, 0.2f64..0.8).prop_map(|(b, m, p, ratio)| GenParams {
        benign_events: b,
        mixed_events: m,
        malicious_events: p,
        benign_ratio: ratio,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scenario × parameter × seed combination generates logs with
    /// exact sizes, 1-based dense numbering, strictly increasing
    /// timestamps and non-empty stacks.
    #[test]
    fn generation_invariants(
        scenario in any_scenario(),
        params in small_params(),
        seed in 0u64..1000,
    ) {
        let logs = scenario.generate_events(&params, seed);
        prop_assert_eq!(logs.benign.len(), params.benign_events);
        prop_assert_eq!(logs.mixed.len(), params.mixed_events);
        prop_assert_eq!(logs.malicious.len(), params.malicious_events);
        for log in [&logs.benign, &logs.mixed, &logs.malicious] {
            let mut last_ts = 0u64;
            for (i, e) in log.iter().enumerate() {
                prop_assert_eq!(e.num, i as u64 + 1);
                prop_assert!(e.timestamp > last_ts);
                last_ts = e.timestamp;
                prop_assert!(!e.frames.is_empty());
                prop_assert!(e.frames.iter().any(|f| f.in_app_image));
                prop_assert!(e.frames.iter().any(|f| !f.in_app_image));
            }
        }
    }

    /// Provenance structure: benign logs are pure benign, malicious logs
    /// pure malicious, and the mixed log's benign share tracks the
    /// configured ratio within a burst-noise tolerance.
    #[test]
    fn provenance_structure(
        scenario in any_scenario(),
        seed in 0u64..200,
    ) {
        let params = GenParams {
            benign_events: 600,
            mixed_events: 600,
            malicious_events: 100,
            benign_ratio: 0.5,
        };
        let logs = scenario.generate_events(&params, seed);
        prop_assert!(logs.benign.iter().all(|e| e.truth == Provenance::Benign));
        prop_assert!(logs.malicious.iter().all(|e| e.truth == Provenance::Malicious));
        let benign_share = logs
            .mixed
            .iter()
            .filter(|e| e.truth == Provenance::Benign)
            .count() as f64
            / logs.mixed.len() as f64;
        // Bursty interleaving has high variance; just require both
        // classes to be well represented.
        prop_assert!((0.15..=0.85).contains(&benign_share), "share {benign_share}");
    }

    /// Generation is a pure function of (scenario, params, seed).
    #[test]
    fn generation_deterministic(
        scenario in any_scenario(),
        params in small_params(),
        seed in 0u64..1000,
    ) {
        let a = scenario.generate_events(&params, seed);
        let b = scenario.generate_events(&params, seed);
        prop_assert_eq!(a.benign, b.benign);
        prop_assert_eq!(a.mixed, b.mixed);
        prop_assert_eq!(a.malicious, b.malicious);
    }

    /// Raw-log serialization always parses back (writer/parser contract),
    /// for any scenario and seed.
    #[test]
    fn raw_logs_always_parse(
        scenario in any_scenario(),
        seed in 0u64..200,
    ) {
        let params = GenParams {
            benign_events: 60,
            mixed_events: 60,
            malicious_events: 30,
            benign_ratio: 0.5,
        };
        let raw = scenario.generate(&params, seed);
        for log in [&raw.benign, &raw.mixed, &raw.malicious] {
            prop_assert!(log.starts_with("# LEAPS-ETL v1"));
            // Each EVENT line is matched by exactly one END.
            let events = log.lines().filter(|l| l.starts_with("EVENT ")).count();
            let ends = log.lines().filter(|l| *l == "END").count();
            prop_assert_eq!(events, ends);
        }
    }
}
