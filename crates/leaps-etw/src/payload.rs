//! Models of the three malicious payloads from the paper's evaluation:
//! Meterpreter-style Reverse TCP shell, Reverse HTTPS shell, and the
//! Codeinject `pwddlg` password dialog.
//!
//! A payload is just a [`ProgramSpec`] like the host applications, but its
//! behaviour profile reflects a backdoor: staging (memory allocation,
//! library resolution), command-and-control (C2) networking, and the
//! post-exploitation actions Meterpreter offers (shell spawning,
//! keylogging, screenshots, credential collection). Some APIs deliberately
//! overlap with benign applications (e.g. `send`/`recv` with Putty) — the
//! *distribution* differs, which is exactly the signal the paper's
//! statistical model keys on.

use crate::program::{ActivityProfile, ProgramSpec};

/// The three payloads of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadId {
    /// Meterpreter with a reverse TCP transport.
    ReverseTcp,
    /// Meterpreter with a reverse HTTPS transport.
    ReverseHttps,
    /// Codeinject `pwddlg`: pops a password dialog, exits on failure.
    Pwddlg,
}

impl PayloadId {
    /// All payloads.
    pub const ALL: [PayloadId; 3] =
        [PayloadId::ReverseTcp, PayloadId::ReverseHttps, PayloadId::Pwddlg];

    /// Dataset-name component, e.g. `"reverse_tcp"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PayloadId::ReverseTcp => "reverse_tcp",
            PayloadId::ReverseHttps => "reverse_https",
            PayloadId::Pwddlg => "codeinject",
        }
    }

    /// Parses a dataset-name component.
    #[must_use]
    pub fn from_name(name: &str) -> Option<PayloadId> {
        PayloadId::ALL.iter().copied().find(|p| p.name() == name)
    }
}

/// Builds the program spec for a payload.
#[must_use]
pub fn payload_spec(payload: PayloadId) -> ProgramSpec {
    let activities = match payload {
        PayloadId::ReverseTcp => vec![
            ActivityProfile::new(
                "stage",
                0.10,
                8,
                &[
                    ("VirtualAlloc", 1.0),
                    ("VirtualProtect", 0.8),
                    ("LoadLibraryW", 0.6),
                    ("GetProcAddress", 1.0),
                ],
            ),
            ActivityProfile::new(
                "c2_tcp",
                0.45,
                14,
                &[
                    ("socket", 0.4),
                    ("connect", 0.7),
                    ("send", 1.2),
                    ("recv", 1.4),
                    ("Sleep", 0.4),
                    ("closesocket", 0.2),
                ],
            ),
            ActivityProfile::new(
                "post_exploit",
                0.45,
                16,
                &[
                    ("CreateProcessW", 0.5),
                    ("GetAsyncKeyState", 1.0),
                    ("BitBlt", 0.4),
                    ("ReadFile", 0.5),
                    ("RegQueryValueExW", 0.5),
                    ("CreateThread", 0.3),
                    ("WriteFile", 0.4),
                ],
            ),
        ],
        PayloadId::ReverseHttps => vec![
            ActivityProfile::new(
                "stage",
                0.10,
                8,
                &[
                    ("VirtualAlloc", 1.0),
                    ("VirtualProtect", 0.8),
                    ("LoadLibraryW", 0.6),
                    ("GetProcAddress", 1.0),
                ],
            ),
            ActivityProfile::new(
                "c2_https",
                0.45,
                16,
                &[
                    ("InternetOpenW", 0.2),
                    ("InternetConnectW", 0.5),
                    ("HttpSendRequestW", 1.2),
                    ("InternetReadFile", 1.4),
                    ("EncryptMessage", 0.6),
                    ("DecryptMessage", 0.6),
                    ("Sleep", 0.4),
                ],
            ),
            ActivityProfile::new(
                "post_exploit",
                0.45,
                16,
                &[
                    ("CreateProcessW", 0.5),
                    ("GetAsyncKeyState", 1.0),
                    ("BitBlt", 0.4),
                    ("ReadFile", 0.5),
                    ("RegQueryValueExW", 0.5),
                    ("CreateThread", 0.3),
                    ("CryptProtectData", 0.4),
                ],
            ),
        ],
        PayloadId::Pwddlg => vec![
            ActivityProfile::new(
                "dialog",
                0.60,
                10,
                &[
                    ("DialogBoxParamW", 1.2),
                    ("CreateWindowExW", 0.6),
                    ("GetMessageW", 0.8),
                    ("DispatchMessageW", 0.8),
                    ("TextOutW", 0.4),
                ],
            ),
            ActivityProfile::new(
                "check",
                0.40,
                8,
                &[
                    ("RegOpenKeyExW", 0.6),
                    ("RegQueryValueExW", 1.0),
                    ("CryptProtectData", 0.5),
                    ("ExitProcess", 0.3),
                    ("WaitForSingleObject", 0.4),
                ],
            ),
        ],
    };
    ProgramSpec {
        name: format!("payload_{}", payload.name()),
        activities,
        seed_salt: 0xbad_0000 + payload as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Va;
    use crate::syslib::SysCatalog;

    #[test]
    fn names_roundtrip() {
        for p in PayloadId::ALL {
            assert_eq!(PayloadId::from_name(p.name()), Some(p));
        }
        assert_eq!(PayloadId::from_name("rootkit"), None);
    }

    #[test]
    fn payload_profiles_reference_known_apis() {
        let catalog = SysCatalog::standard();
        for p in PayloadId::ALL {
            let spec = payload_spec(p);
            for act in &spec.activities {
                for &(api, _) in &act.apis {
                    let _ = catalog.api_id(api);
                }
            }
        }
    }

    #[test]
    fn payloads_instantiate_small() {
        for p in PayloadId::ALL {
            let model = payload_spec(p).instantiate(Va(0x7000_0000), 3);
            // Payloads are much smaller than host applications.
            assert!(model.functions.len() < 60, "{:?}", p);
            assert!(model.functions.len() > 10, "{:?}", p);
        }
    }

    #[test]
    fn tcp_and_https_payloads_differ_in_c2_library_mix() {
        let tcp = payload_spec(PayloadId::ReverseTcp);
        let https = payload_spec(PayloadId::ReverseHttps);
        let tcp_apis: Vec<_> = tcp.activities[1].apis.iter().map(|&(n, _)| n).collect();
        let https_apis: Vec<_> = https.activities[1].apis.iter().map(|&(n, _)| n).collect();
        assert!(tcp_apis.contains(&"send"));
        assert!(https_apis.contains(&"HttpSendRequestW"));
        assert!(!https_apis.contains(&"send"));
    }
}
