//! The raw ETL-like textual log format.
//!
//! A real ETW trace is a binary ETL file; LEAPS's front end parses it into
//! stack-event correlated records. We define an equivalent textual format
//! so that `leaps-trace` has a genuine parsing job with realistic
//! properties: stack frames are recorded **innermost first** (as a stack
//! walker reports return addresses), events carry header fields in
//! `key=value` form, and malformed lines are possible and must be
//! diagnosed.
//!
//! ```text
//! # LEAPS-ETL v1
//! EVENT num=1 type=TcpSend pid=1476 tid=256 ts=17 src=benign
//!   STACK 0xfffff80002003000 tcpip!TcpSendData
//!   STACK 0xfffff80001002000 afd!AfdSend
//!   ...
//!   STACK 0x0000000140001080 vim!main
//! END
//! ```
//!
//! The `src=` field is ground-truth provenance used **only** by evaluation
//! code (confusion matrices); the detection pipeline never reads it.

use crate::event::SysEvent;
use std::fmt::Write as _;

/// Magic first line of a raw log.
pub const HEADER: &str = "# LEAPS-ETL v1";

/// Serializes events into the raw log format.
///
/// Frames are written innermost-first (reverse of the in-memory caller
/// order), as a stack walker would report them.
#[must_use]
pub fn write_log(events: &[SysEvent]) -> String {
    // Rough size pre-allocation: ~64 bytes/line, ~12 lines/event.
    let mut out = String::with_capacity(events.len() * 64 * 12 + 32);
    out.push_str(HEADER);
    out.push('\n');
    for event in events {
        let src = match event.truth {
            crate::event::Provenance::Benign => "benign",
            crate::event::Provenance::Malicious => "malicious",
        };
        let _ = writeln!(
            out,
            "EVENT num={} type={} pid={} tid={} ts={} src={}",
            event.num, event.etype, event.pid, event.tid, event.timestamp, src
        );
        for frame in event.frames.iter().rev() {
            let _ = writeln!(
                out,
                "  STACK 0x{:016x} {}!{}",
                frame.addr.0, frame.module, frame.function
            );
        }
        out.push_str("END\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Va;
    use crate::event::{EventType, Provenance, StackFrame};

    fn sample_event() -> SysEvent {
        SysEvent {
            num: 3,
            etype: EventType::TcpSend,
            pid: 10,
            tid: 20,
            timestamp: 99,
            frames: vec![
                StackFrame::new("vim", "main", Va(0x1000), true),
                StackFrame::new("ws2_32", "send", Va(0x7000), false),
            ],
            truth: Provenance::Malicious,
        }
    }

    #[test]
    fn log_starts_with_header() {
        let log = write_log(&[sample_event()]);
        assert!(log.starts_with(HEADER));
    }

    #[test]
    fn frames_are_written_innermost_first() {
        let log = write_log(&[sample_event()]);
        let lines: Vec<&str> = log.lines().collect();
        assert!(lines[1].starts_with("EVENT num=3 type=TcpSend"));
        assert!(lines[1].contains("src=malicious"));
        assert!(lines[2].contains("ws2_32!send"), "{}", lines[2]);
        assert!(lines[3].contains("vim!main"));
        assert_eq!(lines[4], "END");
    }

    #[test]
    fn empty_log_is_just_header() {
        assert_eq!(write_log(&[]), format!("{HEADER}\n"));
    }
}
