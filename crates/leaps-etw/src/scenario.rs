//! The 21 evaluation datasets of Table I.
//!
//! Each scenario is an (application, payload, attack-method) combination.
//! Generating a scenario produces the three logs the paper's methodology
//! requires:
//!
//! * **benign** — a clean run of the application (latent activity
//!   disabled: the benign training log never covers all functionality);
//! * **mixed** — an infected run with interleaved benign/malicious events
//!   (and the latent benign activity enabled, making the training data
//!   noisy in both directions);
//! * **malicious** — the payload recompiled standalone (rebased), used
//!   only as testing ground truth.

use crate::apps::{app_spec, latent_activity_index, AppId, APP_BASE};
use crate::attack::{AttackMethod, InfectedProcess, STANDALONE_BASE};
use crate::event::SysEvent;
use crate::exec::{run_benign, run_mixed, run_standalone_payload, MixedParams, RunParams};
use crate::logfmt::write_log;
use crate::payload::{payload_spec, PayloadId};
use crate::rng::SimRng;

/// One evaluation dataset: application × payload × attack method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Host application.
    pub app: AppId,
    /// Malicious payload.
    pub payload: PayloadId,
    /// Camouflaging strategy.
    pub method: AttackMethod,
}

impl Scenario {
    /// The 21 datasets in Table I order.
    #[must_use]
    pub fn table1() -> Vec<Scenario> {
        use AppId::*;
        use AttackMethod::*;
        use PayloadId::*;
        let mut v = Vec::with_capacity(21);
        // Offline infection, reverse shells (10).
        for app in [WinScp, Chrome, NotepadPlusPlus, Putty, Vim] {
            for payload in [ReverseTcp, ReverseHttps] {
                v.push(Scenario { app, payload, method: OfflineInfection });
            }
        }
        // Reorder to match the table: winscp, chrome, notepad++, putty, vim
        // is already the order used above except the paper lists
        // winscp, chrome, notepad++, putty, vim — identical.
        // Offline infection, codeinject (3).
        for app in [Vim, NotepadPlusPlus, Putty] {
            v.push(Scenario { app, payload: Pwddlg, method: OfflineInfection });
        }
        // Online injection (8).
        for app in [Putty, NotepadPlusPlus, Vim, WinScp] {
            for payload in [ReverseTcp, ReverseHttps] {
                v.push(Scenario { app, payload, method: OnlineInjection });
            }
        }
        v
    }

    /// The **extension** datasets for the Section VI-A source-level
    /// trojan threat (not part of Table I): five app/payload combinations
    /// where the payload is woven into the application source and the
    /// binary recompiled, shuffling every function address.
    #[must_use]
    pub fn source_trojans() -> Vec<Scenario> {
        use AppId::*;
        use PayloadId::*;
        [
            (Vim, ReverseTcp),
            (Putty, ReverseHttps),
            (NotepadPlusPlus, Pwddlg),
            (WinScp, ReverseTcp),
            (Chrome, ReverseHttps),
        ]
        .into_iter()
        .map(|(app, payload)| Scenario { app, payload, method: AttackMethod::SourceRecompile })
        .collect()
    }

    /// All datasets: Table I plus the source-trojan extension.
    #[must_use]
    pub fn all() -> Vec<Scenario> {
        let mut v = Scenario::table1();
        v.extend(Scenario::source_trojans());
        v
    }

    /// The scenarios of the offline-infection group (Figure 6).
    #[must_use]
    pub fn offline() -> Vec<Scenario> {
        Scenario::table1()
            .into_iter()
            .filter(|s| s.method == AttackMethod::OfflineInfection)
            .collect()
    }

    /// The scenarios of the online-injection group (Figure 7).
    #[must_use]
    pub fn online() -> Vec<Scenario> {
        Scenario::table1()
            .into_iter()
            .filter(|s| s.method == AttackMethod::OnlineInjection)
            .collect()
    }

    /// Dataset name as used in Table I, e.g. `"putty_reverse_https_online"`
    /// or `"vim_codeinject"`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}_{}{}", self.app.name(), self.payload.name(), self.method.suffix())
    }

    /// Looks a scenario up by its dataset name (Table I names plus the
    /// `_source` extension names).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name() == name)
    }

    /// Generates the three raw logs for this scenario.
    #[must_use]
    pub fn generate(&self, params: &GenParams, seed: u64) -> RawLogs {
        let events = self.generate_events(params, seed);
        RawLogs {
            benign: write_log(&events.benign),
            mixed: write_log(&events.mixed),
            malicious: write_log(&events.malicious),
        }
    }

    /// Generates the three logs as in-memory event vectors (skips
    /// serialization; useful for tests and benches of later stages).
    #[must_use]
    pub fn generate_events(&self, params: &GenParams, seed: u64) -> EventLogs {
        // Mix the scenario identity into the seed so two scenarios never
        // share a program layout by accident.
        let mut salt = 0u64;
        for b in self.name().bytes() {
            salt = salt.wrapping_mul(131).wrapping_add(u64::from(b));
        }
        let root = SimRng::new(seed ^ salt);
        let mut seeds = root.clone();
        let app_seed = seeds.next_u64();
        let payload_seed = seeds.next_u64();
        let benign_seed = seeds.next_u64();
        let mixed_seed = seeds.next_u64();
        let malicious_seed = seeds.next_u64();

        let spec = app_spec(self.app);
        let latent = latent_activity_index(&spec);
        let app = spec.instantiate(APP_BASE, app_seed);
        let infection =
            InfectedProcess::stage(&app, &payload_spec(self.payload), self.method, payload_seed);
        let standalone = payload_spec(self.payload).instantiate(STANDALONE_BASE, payload_seed);

        let benign = run_benign(
            &app,
            &[latent],
            RunParams { events: params.benign_events, pid: 0x5c4 },
            benign_seed,
        );
        let mixed = run_mixed(
            &app,
            &infection,
            MixedParams {
                run: RunParams { events: params.mixed_events, pid: 0x7a8 },
                benign_ratio: params.benign_ratio,
            },
            mixed_seed,
        );
        let malicious = run_standalone_payload(
            &standalone,
            RunParams { events: params.malicious_events, pid: 0x9f0 },
            malicious_seed,
        );
        EventLogs { benign, mixed, malicious }
    }
}

/// Generates one **system-wide trace**: the mixed (infected) runs of
/// several scenarios interleaved into a single log, each under its own
/// process id — what a production ETW session actually records. The
/// front end's per-process slicing (`leaps-trace::slicing`) recovers the
/// per-application streams.
///
/// Events are merged by timestamp and renumbered globally; process ids
/// are `0x1000, 0x1001, …` in `scenarios` order.
///
/// # Panics
///
/// Panics if `scenarios` is empty.
#[must_use]
pub fn generate_system_trace(
    scenarios: &[Scenario],
    params: &GenParams,
    seed: u64,
) -> Vec<SysEvent> {
    assert!(!scenarios.is_empty(), "need at least one scenario");
    let mut merged: Vec<SysEvent> = Vec::new();
    for (i, scenario) in scenarios.iter().enumerate() {
        let logs = scenario.generate_events(params, seed ^ (i as u64) << 32);
        let pid = 0x1000 + i as u32;
        merged.extend(logs.mixed.into_iter().map(|mut e| {
            e.pid = pid;
            e
        }));
    }
    merged.sort_by_key(|e| e.timestamp);
    for (i, e) in merged.iter_mut().enumerate() {
        e.num = i as u64 + 1;
    }
    merged
}

/// Log-size and mixing parameters for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Events in the benign log.
    pub benign_events: usize,
    /// Events in the mixed log.
    pub mixed_events: usize,
    /// Events in the standalone-malicious log.
    pub malicious_events: usize,
    /// Fraction of mixed-log events from benign code.
    pub benign_ratio: f64,
}

impl GenParams {
    /// Paper-scale logs (used by the benchmark harness).
    #[must_use]
    pub fn paper() -> Self {
        GenParams {
            benign_events: 6000,
            mixed_events: 6000,
            malicious_events: 3000,
            benign_ratio: 0.5,
        }
    }

    /// Small logs for fast tests.
    #[must_use]
    pub fn small() -> Self {
        GenParams {
            benign_events: 600,
            mixed_events: 600,
            malicious_events: 300,
            benign_ratio: 0.5,
        }
    }
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams::paper()
    }
}

/// The three raw logs of a dataset, in the ETL-like text format.
#[derive(Debug, Clone)]
pub struct RawLogs {
    /// Clean application run.
    pub benign: String,
    /// Infected run (interleaved benign + malicious).
    pub mixed: String,
    /// Standalone payload run (testing ground truth).
    pub malicious: String,
}

/// The three logs of a dataset as parsed-equivalent event vectors.
#[derive(Debug, Clone)]
pub struct EventLogs {
    /// Clean application run.
    pub benign: Vec<SysEvent>,
    /// Infected run.
    pub mixed: Vec<SysEvent>,
    /// Standalone payload run.
    pub malicious: Vec<SysEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Provenance;
    use std::collections::HashSet;

    #[test]
    fn table1_has_21_unique_named_datasets() {
        let scenarios = Scenario::table1();
        assert_eq!(scenarios.len(), 21);
        let names: HashSet<String> = scenarios.iter().map(Scenario::name).collect();
        assert_eq!(names.len(), 21);
        assert!(names.contains("winscp_reverse_tcp"));
        assert!(names.contains("vim_codeinject"));
        assert!(names.contains("putty_reverse_https_online"));
        assert!(!names.contains("chrome_reverse_tcp_online"));
    }

    #[test]
    fn offline_online_partition() {
        assert_eq!(Scenario::offline().len(), 13);
        assert_eq!(Scenario::online().len(), 8);
    }

    #[test]
    fn by_name_roundtrips() {
        for s in Scenario::table1() {
            assert_eq!(Scenario::by_name(&s.name()), Some(s));
        }
        assert!(Scenario::by_name("nonexistent").is_none());
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let s = Scenario::by_name("vim_reverse_tcp").unwrap();
        let a = s.generate(&GenParams::small(), 5);
        let b = s.generate(&GenParams::small(), 5);
        assert_eq!(a.benign, b.benign);
        assert_eq!(a.mixed, b.mixed);
        let c = s.generate(&GenParams::small(), 6);
        assert_ne!(a.mixed, c.mixed);
    }

    #[test]
    fn event_logs_have_correct_provenance_structure() {
        let s = Scenario::by_name("putty_reverse_tcp_online").unwrap();
        let logs = s.generate_events(&GenParams::small(), 5);
        assert!(logs.benign.iter().all(|e| e.truth == Provenance::Benign));
        assert!(logs.malicious.iter().all(|e| e.truth == Provenance::Malicious));
        let mal_in_mixed = logs.mixed.iter().filter(|e| e.truth == Provenance::Malicious).count();
        assert!(mal_in_mixed > 0);
        assert!(mal_in_mixed < logs.mixed.len());
    }

    #[test]
    fn sizes_follow_params() {
        let s = Scenario::by_name("chrome_reverse_https").unwrap();
        let p = GenParams {
            benign_events: 100,
            mixed_events: 150,
            malicious_events: 50,
            benign_ratio: 0.5,
        };
        let logs = s.generate_events(&p, 1);
        assert_eq!(logs.benign.len(), 100);
        assert_eq!(logs.mixed.len(), 150);
        assert_eq!(logs.malicious.len(), 50);
    }

    #[test]
    fn different_scenarios_produce_different_logs() {
        let a = Scenario::by_name("vim_reverse_tcp").unwrap();
        let b = Scenario::by_name("putty_reverse_tcp").unwrap();
        assert_ne!(
            a.generate(&GenParams::small(), 5).benign,
            b.generate(&GenParams::small(), 5).benign
        );
    }
}
