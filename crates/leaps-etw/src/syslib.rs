//! Catalog of Windows-like shared libraries, kernel modules and API
//! frame-chains.
//!
//! LEAPS extracts its statistical features from the *system stack trace*:
//! the shared-library and kernel frames below the application's own code.
//! This module defines a fixed catalog of libraries (`kernel32`, `ntdll`,
//! `ws2_32`, …) and ~50 APIs, each with the frame chain a stack walker
//! would observe when the API reaches its deepest traced point (e.g.
//! `ws2_32!send → mswsock!WSPSend → ntdll!NtDeviceIoControlFile →
//! ntoskrnl!NtDeviceIoControlFile → afd!AfdSend → tcpip!TcpSendData`).

use crate::addr::{AddressRange, Va};
use crate::event::{EventType, StackFrame};
use crate::module::{FunctionSym, ModuleImage};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Identifier of an API in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApiId(pub usize);

/// Static description of a shared library or kernel module.
#[derive(Debug, Clone, Copy)]
struct LibSpec {
    name: &'static str,
    kernel: bool,
}

const LIBS: &[LibSpec] = &[
    LibSpec { name: "ntdll", kernel: false },
    LibSpec { name: "kernel32", kernel: false },
    LibSpec { name: "kernelbase", kernel: false },
    LibSpec { name: "user32", kernel: false },
    LibSpec { name: "win32u", kernel: false },
    LibSpec { name: "gdi32", kernel: false },
    LibSpec { name: "advapi32", kernel: false },
    LibSpec { name: "ws2_32", kernel: false },
    LibSpec { name: "mswsock", kernel: false },
    LibSpec { name: "dnsapi", kernel: false },
    LibSpec { name: "wininet", kernel: false },
    LibSpec { name: "secur32", kernel: false },
    LibSpec { name: "bcrypt", kernel: false },
    LibSpec { name: "crypt32", kernel: false },
    LibSpec { name: "msvcrt", kernel: false },
    LibSpec { name: "shell32", kernel: false },
    LibSpec { name: "ntoskrnl", kernel: true },
    LibSpec { name: "win32k", kernel: true },
    LibSpec { name: "afd", kernel: true },
    LibSpec { name: "tcpip", kernel: true },
    LibSpec { name: "fltmgr", kernel: true },
    LibSpec { name: "ksecdd", kernel: true },
    LibSpec { name: "condrv", kernel: true },
];

/// Static API description: name, emitted event type and frame chain
/// (outermost user-mode frame first, innermost kernel frame last).
struct ApiSpec {
    name: &'static str,
    event: EventType,
    chain: &'static [(&'static str, &'static str)],
}

macro_rules! api {
    ($name:literal, $event:ident, [$(($lib:literal, $func:literal)),+ $(,)?]) => {
        ApiSpec {
            name: $name,
            event: EventType::$event,
            chain: &[$(($lib, $func)),+],
        }
    };
}

#[rustfmt::skip]
const APIS: &[ApiSpec] = &[
    // --- file I/O -------------------------------------------------------
    api!("CreateFileW", FileCreate, [
        ("kernel32", "CreateFileW"), ("kernelbase", "CreateFileW"),
        ("ntdll", "NtCreateFile"), ("ntoskrnl", "NtCreateFile"),
        ("ntoskrnl", "IopCreateFile"), ("fltmgr", "FltpCreate")]),
    api!("ReadFile", FileRead, [
        ("kernel32", "ReadFile"), ("kernelbase", "ReadFile"),
        ("ntdll", "NtReadFile"), ("ntoskrnl", "NtReadFile"),
        ("ntoskrnl", "IopSynchronousServiceTail")]),
    api!("WriteFile", FileWrite, [
        ("kernel32", "WriteFile"), ("kernelbase", "WriteFile"),
        ("ntdll", "NtWriteFile"), ("ntoskrnl", "NtWriteFile"),
        ("ntoskrnl", "IopSynchronousServiceTail")]),
    api!("CloseHandle", FileClose, [
        ("kernel32", "CloseHandle"), ("ntdll", "NtClose"),
        ("ntoskrnl", "NtClose"), ("ntoskrnl", "ObpCloseHandle")]),
    api!("FlushFileBuffers", DiskWrite, [
        ("kernel32", "FlushFileBuffers"), ("ntdll", "NtFlushBuffersFile"),
        ("ntoskrnl", "NtFlushBuffersFile"), ("ntoskrnl", "IopSynchronousServiceTail"),
        ("fltmgr", "FltpDispatch")]),
    api!("GetFileAttributesW", SysCallEnter, [
        ("kernel32", "GetFileAttributesW"), ("ntdll", "NtQueryAttributesFile"),
        ("ntoskrnl", "NtQueryAttributesFile"), ("fltmgr", "FltpCreate")]),
    api!("MapViewOfFile", PageFault, [
        ("kernel32", "MapViewOfFile"), ("ntdll", "NtMapViewOfSection"),
        ("ntoskrnl", "NtMapViewOfSection"), ("ntoskrnl", "MiMapViewOfSection")]),
    api!("fopen", FileCreate, [
        ("msvcrt", "fopen"), ("kernel32", "CreateFileW"),
        ("ntdll", "NtCreateFile"), ("ntoskrnl", "NtCreateFile"),
        ("ntoskrnl", "IopCreateFile"), ("fltmgr", "FltpCreate")]),
    api!("fread", FileRead, [
        ("msvcrt", "fread"), ("kernel32", "ReadFile"),
        ("ntdll", "NtReadFile"), ("ntoskrnl", "NtReadFile"),
        ("ntoskrnl", "IopSynchronousServiceTail")]),
    api!("fwrite", FileWrite, [
        ("msvcrt", "fwrite"), ("kernel32", "WriteFile"),
        ("ntdll", "NtWriteFile"), ("ntoskrnl", "NtWriteFile"),
        ("ntoskrnl", "IopSynchronousServiceTail")]),
    api!("WriteConsoleW", FileWrite, [
        ("kernel32", "WriteConsoleW"), ("ntdll", "NtDeviceIoControlFile"),
        ("ntoskrnl", "NtDeviceIoControlFile"), ("condrv", "CdpDispatch")]),
    api!("ReadConsoleW", FileRead, [
        ("kernel32", "ReadConsoleW"), ("ntdll", "NtDeviceIoControlFile"),
        ("ntoskrnl", "NtDeviceIoControlFile"), ("condrv", "CdpDispatch")]),
    // --- registry -------------------------------------------------------
    api!("RegOpenKeyExW", RegistryOpen, [
        ("advapi32", "RegOpenKeyExW"), ("kernelbase", "RegOpenKeyExInternalW"),
        ("ntdll", "NtOpenKeyEx"), ("ntoskrnl", "NtOpenKeyEx"),
        ("ntoskrnl", "CmOpenKey")]),
    api!("RegQueryValueExW", RegistryRead, [
        ("advapi32", "RegQueryValueExW"), ("ntdll", "NtQueryValueKey"),
        ("ntoskrnl", "NtQueryValueKey"), ("ntoskrnl", "CmQueryValueKey")]),
    api!("RegSetValueExW", RegistryWrite, [
        ("advapi32", "RegSetValueExW"), ("ntdll", "NtSetValueKey"),
        ("ntoskrnl", "NtSetValueKey"), ("ntoskrnl", "CmSetValueKey")]),
    // --- winsock --------------------------------------------------------
    api!("socket", SysCallEnter, [
        ("ws2_32", "socket"), ("mswsock", "WSPSocket"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("afd", "AfdDispatchDeviceControl")]),
    api!("connect", TcpConnect, [
        ("ws2_32", "connect"), ("mswsock", "WSPConnect"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("afd", "AfdConnect"), ("tcpip", "TcpCreateAndConnectTcb")]),
    api!("send", TcpSend, [
        ("ws2_32", "send"), ("mswsock", "WSPSend"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("afd", "AfdSend"), ("tcpip", "TcpSendData")]),
    api!("recv", TcpRecv, [
        ("ws2_32", "recv"), ("mswsock", "WSPRecv"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("afd", "AfdReceive"), ("tcpip", "TcpReceive")]),
    api!("closesocket", TcpDisconnect, [
        ("ws2_32", "closesocket"), ("mswsock", "WSPCloseSocket"),
        ("ntdll", "NtClose"), ("ntoskrnl", "NtClose"),
        ("afd", "AfdCleanup"), ("tcpip", "TcpDisconnectTcb")]),
    api!("WSASend", TcpSend, [
        ("ws2_32", "WSASend"), ("mswsock", "WSPSend"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("afd", "AfdSend"), ("tcpip", "TcpSendData")]),
    api!("WSARecv", TcpRecv, [
        ("ws2_32", "WSARecv"), ("mswsock", "WSPRecv"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("afd", "AfdReceive"), ("tcpip", "TcpReceive")]),
    api!("sendto", UdpSend, [
        ("ws2_32", "sendto"), ("mswsock", "WSPSendTo"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("afd", "AfdSendDatagram"), ("tcpip", "UdpSendMessages")]),
    api!("getaddrinfo", DnsQuery, [
        ("ws2_32", "getaddrinfo"), ("dnsapi", "DnsQuery_W"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("afd", "AfdSendDatagram"), ("tcpip", "UdpSendMessages")]),
    // --- wininet / HTTP -------------------------------------------------
    api!("InternetOpenW", SysCallEnter, [
        ("wininet", "InternetOpenW"), ("ntdll", "NtAlpcSendWaitReceivePort"),
        ("ntoskrnl", "NtAlpcSendWaitReceivePort")]),
    api!("InternetConnectW", TcpConnect, [
        ("wininet", "InternetConnectW"), ("ws2_32", "connect"),
        ("mswsock", "WSPConnect"), ("ntdll", "NtDeviceIoControlFile"),
        ("ntoskrnl", "NtDeviceIoControlFile"), ("afd", "AfdConnect"),
        ("tcpip", "TcpCreateAndConnectTcb")]),
    api!("HttpSendRequestW", TcpSend, [
        ("wininet", "HttpSendRequestW"), ("ws2_32", "send"),
        ("mswsock", "WSPSend"), ("ntdll", "NtDeviceIoControlFile"),
        ("ntoskrnl", "NtDeviceIoControlFile"), ("afd", "AfdSend"),
        ("tcpip", "TcpSendData")]),
    api!("InternetReadFile", TcpRecv, [
        ("wininet", "InternetReadFile"), ("ws2_32", "recv"),
        ("mswsock", "WSPRecv"), ("ntdll", "NtDeviceIoControlFile"),
        ("ntoskrnl", "NtDeviceIoControlFile"), ("afd", "AfdReceive"),
        ("tcpip", "TcpReceive")]),
    // --- TLS / crypto ----------------------------------------------------
    api!("EncryptMessage", CryptoOp, [
        ("secur32", "EncryptMessage"), ("bcrypt", "BCryptEncrypt"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("ksecdd", "KsecDispatch")]),
    api!("DecryptMessage", CryptoOp, [
        ("secur32", "DecryptMessage"), ("bcrypt", "BCryptDecrypt"),
        ("ntdll", "NtDeviceIoControlFile"), ("ntoskrnl", "NtDeviceIoControlFile"),
        ("ksecdd", "KsecDispatch")]),
    api!("AcquireCredentialsHandleW", CryptoOp, [
        ("secur32", "AcquireCredentialsHandleW"),
        ("ntdll", "NtAlpcSendWaitReceivePort"),
        ("ntoskrnl", "NtAlpcSendWaitReceivePort")]),
    api!("InitializeSecurityContextW", CryptoOp, [
        ("secur32", "InitializeSecurityContextW"), ("bcrypt", "BCryptSignHash"),
        ("ntdll", "NtAlpcSendWaitReceivePort"),
        ("ntoskrnl", "NtAlpcSendWaitReceivePort")]),
    api!("CryptProtectData", CryptoOp, [
        ("crypt32", "CryptProtectData"), ("ntdll", "NtAlpcSendWaitReceivePort"),
        ("ntoskrnl", "NtAlpcSendWaitReceivePort")]),
    // --- UI / GDI --------------------------------------------------------
    api!("CreateWindowExW", WindowCreate, [
        ("user32", "CreateWindowExW"), ("win32u", "NtUserCreateWindowEx"),
        ("win32k", "NtUserCreateWindowEx")]),
    api!("DialogBoxParamW", DialogOpen, [
        ("user32", "DialogBoxParamW"), ("user32", "InternalDialogBox"),
        ("win32u", "NtUserCreateWindowEx"), ("win32k", "NtUserCreateWindowEx")]),
    api!("GetMessageW", MessageDispatch, [
        ("user32", "GetMessageW"), ("win32u", "NtUserGetMessage"),
        ("win32k", "NtUserGetMessage")]),
    api!("DispatchMessageW", MessageDispatch, [
        ("user32", "DispatchMessageW"), ("win32u", "NtUserDispatchMessage"),
        ("win32k", "NtUserDispatchMessage")]),
    api!("TextOutW", SysCallEnter, [
        ("gdi32", "TextOutW"), ("win32u", "NtGdiExtTextOutW"),
        ("win32k", "NtGdiExtTextOutW")]),
    api!("BitBlt", SysCallEnter, [
        ("gdi32", "BitBlt"), ("win32u", "NtGdiBitBlt"),
        ("win32k", "NtGdiBitBlt")]),
    api!("GetAsyncKeyState", SysCallEnter, [
        ("user32", "GetAsyncKeyState"), ("win32u", "NtUserGetAsyncKeyState"),
        ("win32k", "NtUserGetAsyncKeyState")]),
    // --- process / thread / memory ---------------------------------------
    api!("CreateProcessW", ProcessCreate, [
        ("kernel32", "CreateProcessW"), ("kernelbase", "CreateProcessInternalW"),
        ("ntdll", "NtCreateUserProcess"), ("ntoskrnl", "NtCreateUserProcess"),
        ("ntoskrnl", "PspInsertProcess")]),
    api!("ExitProcess", ProcessExit, [
        ("kernel32", "ExitProcess"), ("ntdll", "NtTerminateProcess"),
        ("ntoskrnl", "NtTerminateProcess"), ("ntoskrnl", "PspExitProcess")]),
    api!("CreateThread", ThreadCreate, [
        ("kernel32", "CreateThread"), ("ntdll", "NtCreateThreadEx"),
        ("ntoskrnl", "NtCreateThreadEx"), ("ntoskrnl", "PspCreateThread")]),
    api!("CreateRemoteThread", ThreadCreate, [
        ("kernel32", "CreateRemoteThread"), ("ntdll", "NtCreateThreadEx"),
        ("ntoskrnl", "NtCreateThreadEx"), ("ntoskrnl", "PspCreateThread")]),
    api!("ExitThread", ThreadExit, [
        ("kernel32", "ExitThread"), ("ntdll", "NtTerminateThread"),
        ("ntoskrnl", "NtTerminateThread"), ("ntoskrnl", "PspExitThread")]),
    api!("VirtualAlloc", VirtualAlloc, [
        ("kernel32", "VirtualAlloc"), ("kernelbase", "VirtualAlloc"),
        ("ntdll", "NtAllocateVirtualMemory"), ("ntoskrnl", "NtAllocateVirtualMemory"),
        ("ntoskrnl", "MiAllocateVirtualMemory")]),
    api!("VirtualProtect", VirtualProtect, [
        ("kernel32", "VirtualProtect"), ("kernelbase", "VirtualProtect"),
        ("ntdll", "NtProtectVirtualMemory"), ("ntoskrnl", "NtProtectVirtualMemory"),
        ("ntoskrnl", "MiProtectVirtualMemory")]),
    api!("LoadLibraryW", ImageLoad, [
        ("kernel32", "LoadLibraryW"), ("kernelbase", "LoadLibraryExW"),
        ("ntdll", "LdrLoadDll"), ("ntdll", "NtMapViewOfSection"),
        ("ntoskrnl", "NtMapViewOfSection"), ("ntoskrnl", "MiMapViewOfSection")]),
    api!("GetProcAddress", SysCallEnter, [
        ("kernel32", "GetProcAddress"), ("ntdll", "LdrGetProcedureAddress")]),
    api!("WaitForSingleObject", SysCallEnter, [
        ("kernel32", "WaitForSingleObject"), ("ntdll", "NtWaitForSingleObject"),
        ("ntoskrnl", "NtWaitForSingleObject")]),
    api!("Sleep", SysCallEnter, [
        ("kernel32", "Sleep"), ("ntdll", "NtDelayExecution"),
        ("ntoskrnl", "NtDelayExecution")]),
    api!("malloc", SysCallEnter, [
        ("msvcrt", "malloc"), ("ntdll", "RtlAllocateHeap")]),
    api!("ShellExecuteW", ProcessCreate, [
        ("shell32", "ShellExecuteW"), ("kernel32", "CreateProcessW"),
        ("ntdll", "NtCreateUserProcess"), ("ntoskrnl", "NtCreateUserProcess"),
        ("ntoskrnl", "PspInsertProcess")]),
];

/// Resolved API: pre-built system stack frames plus the event type.
#[derive(Debug, Clone)]
struct ApiRuntime {
    name: &'static str,
    event: EventType,
    frames: Vec<StackFrame>,
}

/// Number of internal helper symbols per library (see
/// [`SysCatalog::variant_frame`]).
pub const VARIANT_POOL: usize = 48;

/// The simulated system's library and API catalog.
///
/// Build one with [`SysCatalog::standard`]; it is cheap to share
/// (`&'static`).
#[derive(Debug)]
pub struct SysCatalog {
    libs: Vec<ModuleImage>,
    apis: Vec<ApiRuntime>,
    by_name: BTreeMap<&'static str, ApiId>,
    variants: BTreeMap<&'static str, Vec<StackFrame>>,
}

const USER_LIB_BASE: u64 = 0x7ffb_0000_0000;
const KERNEL_LIB_BASE: u64 = 0xffff_f800_0000_0000;
const LIB_SPAN: u64 = 0x0100_0000;
const FUNC_STRIDE: u64 = 0x1000;

impl SysCatalog {
    /// Returns the process-wide standard catalog.
    pub fn standard() -> &'static SysCatalog {
        static CATALOG: OnceLock<SysCatalog> = OnceLock::new();
        CATALOG.get_or_init(SysCatalog::build)
    }

    fn build() -> SysCatalog {
        // Assign each library a base address; user-mode and kernel-mode
        // libraries live in disjoint halves of the address space.
        let mut lib_base: BTreeMap<&'static str, (Va, bool)> = BTreeMap::new();
        let mut user_idx = 0u64;
        let mut kernel_idx = 0u64;
        for lib in LIBS {
            let base = if lib.kernel {
                let b = Va(KERNEL_LIB_BASE + kernel_idx * LIB_SPAN);
                kernel_idx += 1;
                b
            } else {
                let b = Va(USER_LIB_BASE + user_idx * LIB_SPAN);
                user_idx += 1;
                b
            };
            lib_base.insert(lib.name, (base, lib.kernel));
        }

        // Collect every (lib, func) pair referenced by the API catalog and
        // assign deterministic addresses in first-appearance order.
        let mut func_addr: BTreeMap<(&'static str, &'static str), Va> = BTreeMap::new();
        let mut per_lib_count: BTreeMap<&'static str, u64> = BTreeMap::new();
        for spec in APIS {
            for &(lib, func) in spec.chain {
                assert!(
                    lib_base.contains_key(lib),
                    "API {} references unknown library {lib}",
                    spec.name
                );
                func_addr.entry((lib, func)).or_insert_with(|| {
                    let count = per_lib_count.entry(lib).or_insert(0);
                    *count += 1;
                    lib_base[lib].0.offset(*count * FUNC_STRIDE)
                });
            }
        }

        // Internal helper symbols: real libraries execute through many
        // data-dependent internal frames (heap paths, filter callbacks,
        // locking helpers) that appear in stack walks nondeterministically.
        // Each referenced library gets a pool of such symbols; the
        // execution engine splices them into chains at random, which makes
        // observed call chains variable the way real ETW stacks are.
        let mut variants: BTreeMap<&'static str, Vec<StackFrame>> = BTreeMap::new();
        let referenced: Vec<&'static str> = {
            let mut libs: Vec<&'static str> = per_lib_count.keys().copied().collect();
            libs.sort_unstable();
            libs
        };
        for lib in referenced {
            let pool: Vec<StackFrame> = (0..VARIANT_POOL)
                .map(|k| {
                    let name = format!("InternalWorker{k:02}");
                    let count = per_lib_count.get_mut(lib).expect("counted above");
                    *count += 1;
                    let addr = lib_base[lib].0.offset(*count * FUNC_STRIDE);
                    func_addr.insert((lib, Box::leak(name.clone().into_boxed_str())), addr);
                    StackFrame::new(lib, name, addr, false)
                })
                .collect();
            variants.insert(lib, pool);
        }

        // Materialize module images.
        let mut funcs_per_lib: BTreeMap<&'static str, Vec<FunctionSym>> = BTreeMap::new();
        for (&(lib, func), &addr) in &func_addr {
            funcs_per_lib.entry(lib).or_default().push(FunctionSym { name: func.to_owned(), addr });
        }
        let libs: Vec<ModuleImage> = LIBS
            .iter()
            .map(|spec| {
                let (base, _) = lib_base[spec.name];
                ModuleImage::new(
                    spec.name,
                    AddressRange::new(base, base.offset(LIB_SPAN)),
                    funcs_per_lib.remove(spec.name).unwrap_or_default(),
                    false,
                )
            })
            .collect();

        // Materialize API frame chains.
        let mut by_name = BTreeMap::new();
        let apis: Vec<ApiRuntime> = APIS
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let dup = by_name.insert(spec.name, ApiId(i));
                assert!(dup.is_none(), "duplicate API name {}", spec.name);
                ApiRuntime {
                    name: spec.name,
                    event: spec.event,
                    frames: spec
                        .chain
                        .iter()
                        .map(|&(lib, func)| {
                            StackFrame::new(lib, func, func_addr[&(lib, func)], false)
                        })
                        .collect(),
                }
            })
            .collect();

        SysCatalog { libs, apis, by_name, variants }
    }

    /// The `k`-th internal helper frame of `lib` (see [`VARIANT_POOL`]),
    /// or `None` for unknown libraries.
    ///
    /// # Panics
    ///
    /// Panics if `k >= VARIANT_POOL`.
    #[must_use]
    pub fn variant_frame(&self, lib: &str, k: usize) -> Option<&StackFrame> {
        assert!(k < VARIANT_POOL, "variant index {k} out of range");
        self.variants.get(lib).map(|pool| &pool[k])
    }

    /// Looks up an API id by catalog name.
    ///
    /// # Panics
    ///
    /// Panics on unknown names: profiles reference APIs statically, so an
    /// unknown name is a programming error, caught by unit tests.
    #[must_use]
    pub fn api_id(&self, name: &str) -> ApiId {
        *self.by_name.get(name).unwrap_or_else(|| panic!("unknown API {name:?} in catalog"))
    }

    /// Name of an API.
    #[must_use]
    pub fn api_name(&self, id: ApiId) -> &'static str {
        self.apis[id.0].name
    }

    /// The system stack frames an invocation of `id` produces
    /// (outermost first).
    #[must_use]
    pub fn frames(&self, id: ApiId) -> &[StackFrame] {
        &self.apis[id.0].frames
    }

    /// The event type an invocation of `id` emits.
    #[must_use]
    pub fn event_type(&self, id: ApiId) -> EventType {
        self.apis[id.0].event
    }

    /// Number of APIs in the catalog.
    #[must_use]
    pub fn api_count(&self) -> usize {
        self.apis.len()
    }

    /// The shared-library and kernel module images.
    #[must_use]
    pub fn libraries(&self) -> &[ModuleImage] {
        &self.libs
    }

    /// Resolves an address to its owning library module, if any.
    #[must_use]
    pub fn library_of(&self, addr: Va) -> Option<&ModuleImage> {
        self.libs.iter().find(|m| m.range.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_builds_and_is_nonempty() {
        let c = SysCatalog::standard();
        assert!(c.api_count() >= 45);
        assert!(c.libraries().len() >= 20);
    }

    #[test]
    fn every_api_frame_resolves_in_its_library() {
        let c = SysCatalog::standard();
        for i in 0..c.api_count() {
            for frame in c.frames(ApiId(i)) {
                let lib = c.library_of(frame.addr).expect("frame addr in some lib");
                assert_eq!(lib.name, frame.module);
                let sym = lib.resolve(frame.addr).expect("symbol resolves");
                assert_eq!(sym.name, frame.function);
                assert!(!frame.in_app_image);
            }
        }
    }

    #[test]
    fn library_ranges_are_disjoint() {
        let c = SysCatalog::standard();
        let libs = c.libraries();
        for (i, a) in libs.iter().enumerate() {
            for b in &libs[i + 1..] {
                assert!(!a.range.overlaps(&b.range), "{} overlaps {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn api_names_unique_and_lookup_consistent() {
        let c = SysCatalog::standard();
        let mut seen = HashSet::new();
        for i in 0..c.api_count() {
            let name = c.api_name(ApiId(i));
            assert!(seen.insert(name));
            assert_eq!(c.api_id(name), ApiId(i));
        }
    }

    #[test]
    fn send_chain_shape() {
        let c = SysCatalog::standard();
        let id = c.api_id("send");
        assert_eq!(c.event_type(id), EventType::TcpSend);
        let frames = c.frames(id);
        assert_eq!(frames.first().unwrap().symbol(), "ws2_32!send");
        assert_eq!(frames.last().unwrap().symbol(), "tcpip!TcpSendData");
    }

    #[test]
    #[should_panic(expected = "unknown API")]
    fn unknown_api_panics() {
        let _ = SysCatalog::standard().api_id("NoSuchApi");
    }

    #[test]
    fn shared_functions_have_one_address() {
        // NtDeviceIoControlFile appears in many chains; its address must be
        // identical everywhere so call graphs merge correctly.
        let c = SysCatalog::standard();
        let mut addrs = HashSet::new();
        for i in 0..c.api_count() {
            for f in c.frames(ApiId(i)) {
                if f.symbol() == "ntdll!NtDeviceIoControlFile" {
                    addrs.insert(f.addr);
                }
            }
        }
        assert_eq!(addrs.len(), 1);
    }
}
