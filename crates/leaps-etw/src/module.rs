//! Binary images (modules) laid out in the simulated address space.

use crate::addr::{AddressRange, Va};

/// A function symbol inside a module image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSym {
    /// Symbol name (unique within the module).
    pub name: String,
    /// Entry address of the function.
    pub addr: Va,
}

/// A loaded binary image: the application executable, a shared library or
/// a kernel module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleImage {
    /// Module name without extension, e.g. `"vim"`, `"ntdll"`.
    pub name: String,
    /// Address span occupied by the image.
    pub range: AddressRange,
    /// Function symbols, sorted by address.
    pub functions: Vec<FunctionSym>,
    /// Whether this image is the traced application's own executable.
    pub is_app_image: bool,
}

impl ModuleImage {
    /// Creates an image and verifies every symbol lies inside the range and
    /// that symbols are sorted by address.
    ///
    /// # Panics
    ///
    /// Panics if a symbol falls outside `range` or symbols are unsorted.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        range: AddressRange,
        mut functions: Vec<FunctionSym>,
        is_app_image: bool,
    ) -> Self {
        functions.sort_by_key(|f| f.addr);
        for f in &functions {
            assert!(
                range.contains(f.addr),
                "symbol {} at {} outside module range {range}",
                f.name,
                f.addr
            );
        }
        ModuleImage { name: name.into(), range, functions, is_app_image }
    }

    /// Resolves the function containing/starting at `addr` (nearest symbol
    /// at or below `addr`), as a symbolizer would.
    #[must_use]
    pub fn resolve(&self, addr: Va) -> Option<&FunctionSym> {
        if !self.range.contains(addr) {
            return None;
        }
        match self.functions.binary_search_by_key(&addr, |f| f.addr) {
            Ok(i) => Some(&self.functions[i]),
            Err(0) => None,
            Err(i) => Some(&self.functions[i - 1]),
        }
    }

    /// Looks up a function's entry address by name.
    #[must_use]
    pub fn addr_of(&self, name: &str) -> Option<Va> {
        self.functions.iter().find(|f| f.name == name).map(|f| f.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> ModuleImage {
        ModuleImage::new(
            "demo",
            AddressRange::new(Va(0x1000), Va(0x2000)),
            vec![
                FunctionSym { name: "b".into(), addr: Va(0x1100) },
                FunctionSym { name: "a".into(), addr: Va(0x1000) },
                FunctionSym { name: "c".into(), addr: Va(0x1800) },
            ],
            true,
        )
    }

    #[test]
    fn constructor_sorts_symbols() {
        let m = image();
        let names: Vec<_> = m.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn resolve_finds_containing_function() {
        let m = image();
        assert_eq!(m.resolve(Va(0x1000)).unwrap().name, "a");
        assert_eq!(m.resolve(Va(0x10ff)).unwrap().name, "a");
        assert_eq!(m.resolve(Va(0x1100)).unwrap().name, "b");
        assert_eq!(m.resolve(Va(0x17ff)).unwrap().name, "b");
        assert_eq!(m.resolve(Va(0x1fff)).unwrap().name, "c");
        assert!(m.resolve(Va(0x2000)).is_none());
        assert!(m.resolve(Va(0xfff)).is_none());
    }

    #[test]
    fn addr_of_by_name() {
        let m = image();
        assert_eq!(m.addr_of("c"), Some(Va(0x1800)));
        assert_eq!(m.addr_of("zz"), None);
    }

    #[test]
    #[should_panic(expected = "outside module range")]
    fn rejects_out_of_range_symbol() {
        let _ = ModuleImage::new(
            "bad",
            AddressRange::new(Va(0x1000), Va(0x1100)),
            vec![FunctionSym { name: "x".into(), addr: Va(0x5000) }],
            false,
        );
    }
}
