//! The two camouflaging strategies of the paper: *offline infection*
//! (payload embedded in the benign binary) and *online injection* (payload
//! injected into a running benign process).
//!
//! The strategies differ in where the payload's code lives and how its
//! stack walks look:
//!
//! * **Offline infection** appends the payload's functions after the
//!   benign code inside the application image (typical trojaning: a new
//!   section, entry-point detour). Payload stacks carry a short benign
//!   prefix (`main → hijacked-fn → payload…`) because the payload was
//!   reached by detouring a benign control flow.
//! * **Online injection** allocates the payload in a distant anonymous
//!   memory region and runs it on a separately created remote thread, so
//!   payload stacks contain payload frames only, and the frames resolve to
//!   no module (`<anon>`).

use crate::addr::Va;
use crate::program::{FuncId, ProgramModel, ProgramSpec};

/// Attack method of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackMethod {
    /// Malicious payload embedded in the benign binary (Table I).
    OfflineInfection,
    /// Malicious payload injected into a benign process at runtime
    /// (Table I).
    OnlineInjection,
    /// Payload source woven into the application and recompiled — the
    /// Section VI-A threat the paper leaves as future work. Every
    /// function of the trojaned binary gets a fresh address, interleaved
    /// with the payload's, so address-based CFG comparison breaks.
    SourceRecompile,
}

impl AttackMethod {
    /// Human-readable label for the method.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttackMethod::OfflineInfection => "Offline Infection",
            AttackMethod::OnlineInjection => "Online Injection",
            AttackMethod::SourceRecompile => "Source-level Trojan",
        }
    }

    /// Dataset-name suffix (`""` for offline, `"_online"` for online,
    /// `"_source"` for source-level trojans).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            AttackMethod::OfflineInfection => "",
            AttackMethod::OnlineInjection => "_online",
            AttackMethod::SourceRecompile => "_source",
        }
    }
}

/// Gap between the benign image end and an appended (trojaned) payload.
const APPEND_GAP: u64 = 0x4000;
/// Where online-injected payloads are allocated: a typical heap/VirtualAlloc
/// region far away from the image.
const INJECT_BASE: Va = Va(0x0000_7ff5_d000_0000);
/// Base used when a payload is recompiled standalone ("pure malicious").
pub const STANDALONE_BASE: Va = Va(0x0000_0001_5000_0000);

/// A payload instantiated for a specific attack against a specific
/// application instance.
#[derive(Debug, Clone)]
pub struct InfectedProcess {
    /// The attack method used.
    pub method: AttackMethod,
    /// The payload program, laid out per the method.
    pub payload: ProgramModel,
    /// For offline infection and source-level trojans: the benign function
    /// whose control flow was detoured to reach the payload (stack prefix
    /// `main → hijack`).
    pub hijack: Option<FuncId>,
    /// Module name payload frames resolve to (`app` image name for offline
    /// and source trojans, `"<anon>"` for online).
    pub payload_module_name: String,
    /// For source-level trojans: the recompiled application image (same
    /// logical program as the clean one, every function at a fresh
    /// address). The execution engine runs the benign stream from this
    /// model instead of the original.
    pub app_override: Option<ProgramModel>,
}

impl InfectedProcess {
    /// Stages `payload_spec` into `app` using `method`.
    ///
    /// `seed` controls the payload's internal structure (the same seed
    /// yields the same logical payload at any base, modeling the paper's
    /// recompilation of the payload as standalone malware for ground
    /// truth).
    #[must_use]
    pub fn stage(
        app: &ProgramModel,
        payload_spec: &ProgramSpec,
        method: AttackMethod,
        seed: u64,
    ) -> InfectedProcess {
        match method {
            AttackMethod::OfflineInfection => {
                let base = app.module.range.end.offset(APPEND_GAP);
                let payload = payload_spec.instantiate(base, seed);
                // Detour the first activity's entry: a deterministic,
                // plausible choice (the trojan triggers on a hot path).
                let hijack = Some(app.activity_entries[0]);
                InfectedProcess {
                    method,
                    payload,
                    hijack,
                    payload_module_name: app.module.name.clone(),
                    app_override: None,
                }
            }
            AttackMethod::OnlineInjection => {
                let payload = payload_spec.instantiate(INJECT_BASE, seed);
                InfectedProcess {
                    method,
                    payload,
                    hijack: None,
                    payload_module_name: "<anon>".to_owned(),
                    app_override: None,
                }
            }
            AttackMethod::SourceRecompile => {
                // Same logical payload as anywhere else...
                let payload = payload_spec.instantiate(app.module.range.start, seed);
                // ...then "recompile": relayout the combined program at
                // the application's own base, interleaving app and payload
                // functions in the address space.
                let (recompiled_app, payload) =
                    relayout_pair(app, &payload, app.module.range.start, seed ^ 0x5ec0);
                let hijack = Some(recompiled_app.activity_entries[0]);
                InfectedProcess {
                    method,
                    payload,
                    hijack,
                    payload_module_name: recompiled_app.module.name.clone(),
                    app_override: Some(recompiled_app),
                }
            }
        }
    }
}

/// "Recompiles" an application together with a payload: both keep their
/// logical structure (names, call edges, API call sites) but every
/// function gets a fresh address from one shuffled combined layout at
/// `base` — what a compiler does when the trojan source is woven into the
/// code base.
#[must_use]
pub fn relayout_pair(
    app: &ProgramModel,
    payload: &ProgramModel,
    base: Va,
    layout_seed: u64,
) -> (ProgramModel, ProgramModel) {
    use crate::module::{FunctionSym, ModuleImage};
    use crate::program::{CODE_START, FUNC_STRIDE};
    use crate::rng::SimRng;

    let mut app = app.clone();
    let mut payload = payload.clone();
    let total = app.functions.len() + payload.functions.len();
    let mut rng = SimRng::new(layout_seed);

    // slots[k] = (which model, function index).
    let mut slots: Vec<(bool, FuncId)> = (0..app.functions.len())
        .map(|i| (false, i))
        .chain((0..payload.functions.len()).map(|i| (true, i)))
        .collect();
    rng.shuffle(&mut slots);
    for (slot, &(is_payload, fid)) in slots.iter().enumerate() {
        let jitter = rng.below(0x30) as u64;
        let addr = base.offset(CODE_START + slot as u64 * FUNC_STRIDE + jitter);
        if is_payload {
            payload.functions[fid].addr = addr;
        } else {
            app.functions[fid].addr = addr;
        }
    }
    let range = crate::addr::AddressRange::new(
        base,
        base.offset(CODE_START + total as u64 * FUNC_STRIDE + 0x1000),
    );
    let rebuild = |name: &str, functions: &[crate::program::FuncNode]| {
        ModuleImage::new(
            name,
            range,
            functions.iter().map(|f| FunctionSym { name: f.name.clone(), addr: f.addr }).collect(),
            true,
        )
    };
    // Both "modules" are views of the single trojaned image; the payload
    // symbols resolve to the application module name.
    app.module = rebuild(&app.module.name, &app.functions);
    payload.module = rebuild(&app.module.name, &payload.functions);
    (app, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{app_spec, AppId, APP_BASE};
    use crate::payload::{payload_spec, PayloadId};

    fn host() -> ProgramModel {
        app_spec(AppId::Vim).instantiate(APP_BASE, 1)
    }

    #[test]
    fn offline_payload_is_appended_after_image() {
        let app = host();
        let inf = InfectedProcess::stage(
            &app,
            &payload_spec(PayloadId::ReverseTcp),
            AttackMethod::OfflineInfection,
            9,
        );
        assert!(inf.payload.module.range.start >= app.module.range.end);
        // Close by (same binary), not in a far region.
        assert!(inf.payload.module.range.start.distance(app.module.range.end) < 0x10_0000);
        assert!(inf.hijack.is_some());
        assert_eq!(inf.payload_module_name, app.module.name);
    }

    #[test]
    fn online_payload_is_far_from_image() {
        let app = host();
        let inf = InfectedProcess::stage(
            &app,
            &payload_spec(PayloadId::ReverseTcp),
            AttackMethod::OnlineInjection,
            9,
        );
        assert!(inf.payload.module.range.start.distance(app.module.range.end) > 0x1_0000_0000);
        assert!(inf.hijack.is_none());
        assert_eq!(inf.payload_module_name, "<anon>");
    }

    #[test]
    fn same_seed_same_logical_payload_across_methods() {
        let app = host();
        let off = InfectedProcess::stage(
            &app,
            &payload_spec(PayloadId::Pwddlg),
            AttackMethod::OfflineInfection,
            4,
        );
        let on = InfectedProcess::stage(
            &app,
            &payload_spec(PayloadId::Pwddlg),
            AttackMethod::OnlineInjection,
            4,
        );
        assert_eq!(off.payload.functions.len(), on.payload.functions.len());
        for (a, b) in off.payload.functions.iter().zip(&on.payload.functions) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn method_labels() {
        assert_eq!(AttackMethod::OfflineInfection.label(), "Offline Infection");
        assert_eq!(AttackMethod::OnlineInjection.suffix(), "_online");
    }
}
