//! Virtual addresses and address ranges.

use std::fmt;

/// A virtual address in the simulated process address space.
///
/// Newtype over `u64` so that addresses cannot be confused with event
/// numbers, cluster ids or other integer-typed quantities flowing through
/// the pipeline.
///
/// ```
/// use leaps_etw::Va;
/// let a = Va(0x401000);
/// assert_eq!(format!("{a}"), "0x0000000000401000");
/// assert!(a < Va(0x402000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Va(pub u64);

impl Va {
    /// Returns the address advanced by `offset` bytes.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow (debug builds).
    #[must_use]
    pub fn offset(self, offset: u64) -> Va {
        Va(self.0 + offset)
    }

    /// Absolute distance in bytes between two addresses.
    #[must_use]
    pub fn distance(self, other: Va) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for Va {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

impl fmt::LowerHex for Va {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Va {
    fn from(raw: u64) -> Self {
        Va(raw)
    }
}

impl From<Va> for u64 {
    fn from(va: Va) -> Self {
        va.0
    }
}

/// A half-open `[start, end)` range of virtual addresses, e.g. the span of
/// a loaded module image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressRange {
    /// Inclusive lower bound.
    pub start: Va,
    /// Exclusive upper bound.
    pub end: Va,
}

impl AddressRange {
    /// Creates a range. `start` must not exceed `end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    pub fn new(start: Va, end: Va) -> Self {
        assert!(start <= end, "address range start {start} > end {end}");
        AddressRange { start, end }
    }

    /// Whether `addr` falls inside the range.
    #[must_use]
    pub fn contains(&self, addr: Va) -> bool {
        self.start <= addr && addr < self.end
    }

    /// Size of the range in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether this range overlaps `other` in at least one byte.
    #[must_use]
    pub fn overlaps(&self, other: &AddressRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for AddressRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(Va(0xdead).to_string(), "0x000000000000dead");
    }

    #[test]
    fn offset_and_distance() {
        let a = Va(0x1000);
        assert_eq!(a.offset(0x20), Va(0x1020));
        assert_eq!(a.distance(Va(0x1010)), 0x10);
        assert_eq!(Va(0x1010).distance(a), 0x10);
    }

    #[test]
    fn range_contains_is_half_open() {
        let r = AddressRange::new(Va(0x100), Va(0x200));
        assert!(r.contains(Va(0x100)));
        assert!(r.contains(Va(0x1ff)));
        assert!(!r.contains(Va(0x200)));
        assert!(!r.contains(Va(0xff)));
        assert_eq!(r.len(), 0x100);
        assert!(!r.is_empty());
    }

    #[test]
    fn range_overlap() {
        let a = AddressRange::new(Va(0x100), Va(0x200));
        let b = AddressRange::new(Va(0x1ff), Va(0x300));
        let c = AddressRange::new(Va(0x200), Va(0x300));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "address range start")]
    fn range_rejects_inverted_bounds() {
        let _ = AddressRange::new(Va(2), Va(1));
    }

    #[test]
    fn conversions_roundtrip() {
        let v: Va = 0x42u64.into();
        let raw: u64 = v.into();
        assert_eq!(raw, 0x42);
    }

    #[test]
    fn empty_range() {
        let r = AddressRange::new(Va(5), Va(5));
        assert!(r.is_empty());
        assert!(!r.contains(Va(5)));
    }
}
