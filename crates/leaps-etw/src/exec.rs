//! The execution engine: turns program models into stack-walked event
//! streams, including interleaved benign/malicious execution for mixed
//! runs.
//!
//! Events are generated as *bursts* per activity (a program works on one
//! thing for a while before switching), which produces the adjacent-event
//! stack correlation Algorithm 1's implicit-path inference exploits.

use crate::attack::{AttackMethod, InfectedProcess};
use crate::event::{Provenance, StackFrame, SysEvent};
use crate::program::{FuncId, ProgramModel};
use crate::rng::SimRng;
use crate::syslib::SysCatalog;

/// Probability of staying in the current activity for the next event.
const ACTIVITY_PERSISTENCE: f64 = 0.85;
/// Probability that the next mixed-run event comes from the same thread
/// as the previous one (burst interleaving; mean burst ≈ 12 events).
const BURST_CONTINUATION: f64 = 0.92;
/// Probability that an API chain routes through an internal helper frame.
const VARIANT_INSERT_P: f64 = 0.4;
/// Main application thread id.
const APP_TID: u32 = 0x100;
/// Backdoor/injected thread id.
const PAYLOAD_TID: u32 = 0x200;

/// Probability that a payload API invocation skips the outermost
/// user-mode wrapper frame: shellcode and reflectively loaded payloads
/// resolve low-level entry points directly (no import table, direct
/// `ntdll`/provider calls), so their stack walks miss the documented
/// wrapper frames a normally linked application shows.
const PAYLOAD_DIRECT_CALL_P: f64 = 0.65;

/// One program's event source within a run.
struct Stream<'m> {
    model: &'m ProgramModel,
    enabled: Vec<usize>,
    truth: Provenance,
    tid: u32,
    /// Stack frames prepended to every event (offline-infection hijack
    /// prefix), outermost first.
    prefix: Vec<StackFrame>,
    /// Module name override for the program's own frames.
    module_name: String,
    /// Probability of skipping the outermost user-mode API wrapper frame
    /// (0 for normally linked applications).
    direct_call_p: f64,
    current_activity: usize,
    rng: SimRng,
}

impl<'m> Stream<'m> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        model: &'m ProgramModel,
        enabled: Vec<usize>,
        truth: Provenance,
        tid: u32,
        prefix: Vec<StackFrame>,
        module_name: String,
        direct_call_p: f64,
        rng: SimRng,
    ) -> Self {
        let mut s = Stream {
            model,
            enabled,
            truth,
            tid,
            prefix,
            module_name,
            direct_call_p,
            current_activity: 0,
            rng,
        };
        s.current_activity = s.model.sample_activity(&s.enabled, &mut s.rng);
        s
    }

    fn next_event(&mut self, num: u64, pid: u32, timestamp: u64) -> SysEvent {
        if !self.rng.chance(ACTIVITY_PERSISTENCE) {
            self.current_activity = self.model.sample_activity(&self.enabled, &mut self.rng);
        }
        let (path, api) = self.model.sample_call(self.current_activity, &mut self.rng);
        let catalog = SysCatalog::standard();
        let mut frames = self.prefix.clone();
        frames.extend(path.iter().map(|&fid| self.frame_of(fid)));
        let api_frames = catalog.frames(api);
        let mut skip = usize::from(
            api_frames.len() > 2 && self.direct_call_p > 0.0 && self.rng.chance(self.direct_call_p),
        );
        // Long wrapper chains (e.g. wininet over winsock) lose more than
        // one frame when the payload resolves providers directly.
        if skip == 1 && api_frames.len() > 4 && self.rng.chance(0.5) {
            skip = 2;
        }
        let chain = &api_frames[skip..];
        // Data-dependent internal helper frames: real stack walks route
        // through allocator/filter/lock helpers nondeterministically, so
        // the same API produces many chain variants. Each frame may call
        // into a helper of its own library; the variant index is skewed so
        // a few helpers are hot and the tail is rare -- rare variants are
        // what a call-graph model never saw in training, while the
        // set-dissimilarity clustering absorbs them (the paper's
        // robustness argument for statistical learning).
        for (i, frame) in chain.iter().enumerate() {
            frames.push(frame.clone());
            if i + 1 < chain.len() && self.rng.chance(VARIANT_INSERT_P) {
                let r = self.rng.f64();
                let k = (r.powf(1.2) * crate::syslib::VARIANT_POOL as f64) as usize;
                let k = k.min(crate::syslib::VARIANT_POOL - 1);
                if let Some(helper) = catalog.variant_frame(&frame.module, k) {
                    frames.push(helper.clone());
                }
            }
        }
        SysEvent {
            num,
            etype: catalog.event_type(api),
            pid,
            tid: self.tid,
            timestamp,
            frames,
            truth: self.truth,
        }
    }

    fn frame_of(&self, fid: FuncId) -> StackFrame {
        let f = &self.model.functions[fid];
        StackFrame::new(self.module_name.clone(), f.name.clone(), f.addr, true)
    }
}

/// Parameters of a single traced run.
#[derive(Debug, Clone, Copy)]
pub struct RunParams {
    /// Number of events to emit.
    pub events: usize,
    /// Traced process id.
    pub pid: u32,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams { events: 2000, pid: 0x5c4 }
    }
}

/// Runs a clean application, excluding the activities in `disabled`
/// (the latent activity during benign training runs).
///
/// Events are numbered from 1; timestamps are strictly increasing.
#[must_use]
pub fn run_benign(
    app: &ProgramModel,
    disabled: &[usize],
    params: RunParams,
    seed: u64,
) -> Vec<SysEvent> {
    let enabled: Vec<usize> =
        (0..app.activity_entries.len()).filter(|i| !disabled.contains(i)).collect();
    let rng = SimRng::new(seed);
    let mut stream = Stream::new(
        app,
        enabled,
        Provenance::Benign,
        APP_TID,
        Vec::new(),
        app.module.name.clone(),
        0.0,
        rng.derive(1),
    );
    let mut clock = rng.derive(2);
    let mut ts = 0u64;
    (0..params.events)
        .map(|i| {
            ts += 1 + clock.below(40) as u64;
            stream.next_event(i as u64 + 1, params.pid, ts)
        })
        .collect()
}

/// Parameters of a mixed (infected) run.
#[derive(Debug, Clone, Copy)]
pub struct MixedParams {
    /// Base run parameters.
    pub run: RunParams,
    /// Fraction of events originating from benign code (the payload runs
    /// under cover, so benign events dominate — the "noisy training set").
    pub benign_ratio: f64,
}

impl Default for MixedParams {
    fn default() -> Self {
        MixedParams { run: RunParams::default(), benign_ratio: 0.6 }
    }
}

/// Runs an infected application: benign activity (including the latent
/// activities unseen during benign training) interleaved with payload
/// activity.
#[must_use]
pub fn run_mixed(
    app: &ProgramModel,
    infection: &InfectedProcess,
    params: MixedParams,
    seed: u64,
) -> Vec<SysEvent> {
    assert!((0.0..=1.0).contains(&params.benign_ratio), "benign_ratio must be in [0,1]");
    let rng = SimRng::new(seed);
    // Source-level trojans run the benign code from the recompiled image.
    let benign_model = infection.app_override.as_ref().unwrap_or(app);
    let all: Vec<usize> = (0..benign_model.activity_entries.len()).collect();
    let mut benign = Stream::new(
        benign_model,
        all,
        Provenance::Benign,
        APP_TID,
        Vec::new(),
        benign_model.module.name.clone(),
        0.0,
        rng.derive(1),
    );
    let prefix = hijack_prefix(benign_model, infection);
    let payload_enabled: Vec<usize> = (0..infection.payload.activity_entries.len()).collect();
    let mut payload = Stream::new(
        &infection.payload,
        payload_enabled,
        Provenance::Malicious,
        PAYLOAD_TID,
        prefix,
        infection.payload_module_name.clone(),
        PAYLOAD_DIRECT_CALL_P,
        rng.derive(2),
    );

    let mut pick = rng.derive(3);
    let mut clock = rng.derive(4);
    let mut ts = 0u64;
    // Interleave in bursts: consecutive events tend to come from the same
    // thread (the scheduler runs each timeslice for many events, and a C2
    // session or file transfer emits long homogeneous phases).
    let mut from_benign = true;
    (0..params.run.events)
        .map(|i| {
            if !pick.chance(BURST_CONTINUATION) {
                from_benign = pick.chance(params.benign_ratio);
            }
            ts += 1 + clock.below(40) as u64;
            let num = i as u64 + 1;
            if from_benign {
                benign.next_event(num, params.run.pid, ts)
            } else {
                payload.next_event(num, params.run.pid, ts)
            }
        })
        .collect()
}

/// Runs the payload as standalone malware (the paper's manually extracted
/// and recompiled "pure malicious samples", used as testing ground truth).
#[must_use]
pub fn run_standalone_payload(
    payload: &ProgramModel,
    params: RunParams,
    seed: u64,
) -> Vec<SysEvent> {
    let rng = SimRng::new(seed);
    let enabled: Vec<usize> = (0..payload.activity_entries.len()).collect();
    let mut stream = Stream::new(
        payload,
        enabled,
        Provenance::Malicious,
        APP_TID,
        Vec::new(),
        payload.module.name.clone(),
        PAYLOAD_DIRECT_CALL_P,
        rng.derive(1),
    );
    let mut clock = rng.derive(2);
    let mut ts = 0u64;
    (0..params.events)
        .map(|i| {
            ts += 1 + clock.below(40) as u64;
            stream.next_event(i as u64 + 1, params.pid, ts)
        })
        .collect()
}

fn hijack_prefix(app: &ProgramModel, infection: &InfectedProcess) -> Vec<StackFrame> {
    match (infection.method, infection.hijack) {
        (AttackMethod::OfflineInfection | AttackMethod::SourceRecompile, Some(hijack)) => {
            let root = &app.functions[app.root];
            let h = &app.functions[hijack];
            vec![
                StackFrame::new(app.module.name.clone(), root.name.clone(), root.addr, true),
                StackFrame::new(app.module.name.clone(), h.name.clone(), h.addr, true),
            ]
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{app_spec, latent_activity_index, AppId, APP_BASE};
    use crate::attack::InfectedProcess;
    use crate::payload::{payload_spec, PayloadId};

    fn setup() -> (ProgramModel, InfectedProcess) {
        let app = app_spec(AppId::Vim).instantiate(APP_BASE, 7);
        let inf = InfectedProcess::stage(
            &app,
            &payload_spec(PayloadId::ReverseTcp),
            AttackMethod::OfflineInfection,
            7,
        );
        (app, inf)
    }

    #[test]
    fn benign_run_emits_requested_count_with_monotone_numbering() {
        let (app, _) = setup();
        let events = run_benign(&app, &[], RunParams { events: 500, pid: 1 }, 3);
        assert_eq!(events.len(), 500);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.num, i as u64 + 1);
            assert_eq!(e.truth, Provenance::Benign);
            assert!(e.frames.iter().any(|f| f.in_app_image));
            assert!(e.frames.iter().any(|f| !f.in_app_image));
        }
        let ts: Vec<u64> = events.iter().map(|e| e.timestamp).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn benign_run_is_deterministic() {
        let (app, _) = setup();
        let a = run_benign(&app, &[], RunParams::default(), 3);
        let b = run_benign(&app, &[], RunParams::default(), 3);
        assert_eq!(a, b);
        let c = run_benign(&app, &[], RunParams::default(), 4);
        assert_ne!(a, c);
    }

    #[test]
    fn disabled_activity_never_appears() {
        let (app, _) = setup();
        let latent = latent_activity_index(&app_spec(AppId::Vim));
        let latent_name = app.activity_names[latent];
        let events = run_benign(&app, &[latent], RunParams { events: 800, pid: 1 }, 3);
        for e in &events {
            for f in e.frames.iter().filter(|f| f.in_app_image) {
                assert!(
                    !f.function.contains(latent_name),
                    "latent activity leaked: {}",
                    f.function
                );
            }
        }
    }

    #[test]
    fn mixed_run_interleaves_and_respects_ratio_roughly() {
        let (app, inf) = setup();
        let events = run_mixed(
            &app,
            &inf,
            MixedParams { run: RunParams { events: 3000, pid: 1 }, benign_ratio: 0.6 },
            11,
        );
        let benign = events.iter().filter(|e| e.truth == Provenance::Benign).count();
        let frac = benign as f64 / events.len() as f64;
        assert!((0.5..0.7).contains(&frac), "benign fraction {frac}");
        // Malicious events run on the payload thread.
        for e in &events {
            match e.truth {
                Provenance::Benign => assert_eq!(e.tid, APP_TID),
                Provenance::Malicious => assert_eq!(e.tid, PAYLOAD_TID),
            }
        }
    }

    #[test]
    fn offline_malicious_events_carry_hijack_prefix() {
        let (app, inf) = setup();
        let events = run_mixed(&app, &inf, MixedParams::default(), 11);
        let mal = events
            .iter()
            .find(|e| e.truth == Provenance::Malicious)
            .expect("some malicious events");
        assert_eq!(mal.frames[0].function, "main");
        assert_eq!(mal.frames[0].module, app.module.name);
        // Payload frames resolve to the host module for offline infection.
        assert!(mal.frames.iter().any(|f| f.in_app_image && f.function.starts_with("payload_")));
    }

    #[test]
    fn online_malicious_events_have_anonymous_frames_and_no_prefix() {
        let app = app_spec(AppId::Putty).instantiate(APP_BASE, 2);
        let inf = InfectedProcess::stage(
            &app,
            &payload_spec(PayloadId::ReverseHttps),
            AttackMethod::OnlineInjection,
            2,
        );
        let events = run_mixed(&app, &inf, MixedParams::default(), 5);
        let mal = events
            .iter()
            .find(|e| e.truth == Provenance::Malicious)
            .expect("some malicious events");
        // Remote-thread stacks start at the payload's own entry, which
        // resolves to no module.
        assert_eq!(mal.frames[0].function, "main");
        assert_eq!(mal.frames[0].module, "<anon>");
        assert!(mal
            .frames
            .iter()
            .any(|f| f.module == "<anon>" && f.function.starts_with("payload_")));
    }

    #[test]
    fn standalone_payload_is_all_malicious() {
        let payload =
            payload_spec(PayloadId::Pwddlg).instantiate(crate::attack::STANDALONE_BASE, 7);
        let events = run_standalone_payload(&payload, RunParams { events: 300, pid: 9 }, 13);
        assert_eq!(events.len(), 300);
        assert!(events.iter().all(|e| e.truth == Provenance::Malicious));
    }

    #[test]
    fn adjacent_events_share_stack_prefixes_often() {
        let (app, _) = setup();
        let events = run_benign(&app, &[], RunParams { events: 1000, pid: 1 }, 3);
        let mut shared = 0usize;
        for w in events.windows(2) {
            let a: Vec<_> = w[0].app_frames().map(|f| f.addr).collect();
            let b: Vec<_> = w[1].app_frames().map(|f| f.addr).collect();
            if a.len() >= 2 && b.len() >= 2 && a[..2] == b[..2] {
                shared += 1;
            }
        }
        // Bursty activities mean most neighbours share main + activity entry.
        assert!(shared > 500, "only {shared} adjacent pairs share a prefix");
    }
}
