//! System events and stack frames — the record types ETW would emit.

use crate::addr::Va;
use std::fmt;

/// Kinds of system events traced by the simulated logging engine.
///
/// Mirrors the event classes ETW exposes with stack walking enabled
/// (process/thread lifecycle, image load, system calls, file, registry and
/// network operations — Section IV of the paper). The discriminant doubles
/// as the paper's integer-mapped `Event_Type` feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u32)]
pub enum EventType {
    ProcessCreate = 0,
    ProcessExit = 1,
    ThreadCreate = 2,
    ThreadExit = 3,
    ImageLoad = 4,
    ImageUnload = 5,
    SysCallEnter = 6,
    SysCallExit = 7,
    FileCreate = 8,
    FileRead = 9,
    FileWrite = 10,
    FileClose = 11,
    RegistryOpen = 12,
    RegistryRead = 13,
    RegistryWrite = 14,
    TcpConnect = 15,
    TcpSend = 16,
    TcpRecv = 17,
    TcpDisconnect = 18,
    UdpSend = 19,
    DnsQuery = 20,
    VirtualAlloc = 21,
    VirtualProtect = 22,
    PageFault = 23,
    WindowCreate = 24,
    DialogOpen = 25,
    MessageDispatch = 26,
    CryptoOp = 27,
    DiskRead = 28,
    DiskWrite = 29,
}

impl EventType {
    /// All event types, in discriminant order.
    pub const ALL: [EventType; 30] = [
        EventType::ProcessCreate,
        EventType::ProcessExit,
        EventType::ThreadCreate,
        EventType::ThreadExit,
        EventType::ImageLoad,
        EventType::ImageUnload,
        EventType::SysCallEnter,
        EventType::SysCallExit,
        EventType::FileCreate,
        EventType::FileRead,
        EventType::FileWrite,
        EventType::FileClose,
        EventType::RegistryOpen,
        EventType::RegistryRead,
        EventType::RegistryWrite,
        EventType::TcpConnect,
        EventType::TcpSend,
        EventType::TcpRecv,
        EventType::TcpDisconnect,
        EventType::UdpSend,
        EventType::DnsQuery,
        EventType::VirtualAlloc,
        EventType::VirtualProtect,
        EventType::PageFault,
        EventType::WindowCreate,
        EventType::DialogOpen,
        EventType::MessageDispatch,
        EventType::CryptoOp,
        EventType::DiskRead,
        EventType::DiskWrite,
    ];

    /// The paper's integer mapping of `Event_Type`.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self as u32
    }

    /// Parses the canonical name produced by [`fmt::Display`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<EventType> {
        EventType::ALL.iter().copied().find(|e| e.name() == name)
    }

    /// Canonical name as written in raw logs, e.g. `"FileWrite"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventType::ProcessCreate => "ProcessCreate",
            EventType::ProcessExit => "ProcessExit",
            EventType::ThreadCreate => "ThreadCreate",
            EventType::ThreadExit => "ThreadExit",
            EventType::ImageLoad => "ImageLoad",
            EventType::ImageUnload => "ImageUnload",
            EventType::SysCallEnter => "SysCallEnter",
            EventType::SysCallExit => "SysCallExit",
            EventType::FileCreate => "FileCreate",
            EventType::FileRead => "FileRead",
            EventType::FileWrite => "FileWrite",
            EventType::FileClose => "FileClose",
            EventType::RegistryOpen => "RegistryOpen",
            EventType::RegistryRead => "RegistryRead",
            EventType::RegistryWrite => "RegistryWrite",
            EventType::TcpConnect => "TcpConnect",
            EventType::TcpSend => "TcpSend",
            EventType::TcpRecv => "TcpRecv",
            EventType::TcpDisconnect => "TcpDisconnect",
            EventType::UdpSend => "UdpSend",
            EventType::DnsQuery => "DnsQuery",
            EventType::VirtualAlloc => "VirtualAlloc",
            EventType::VirtualProtect => "VirtualProtect",
            EventType::PageFault => "PageFault",
            EventType::WindowCreate => "WindowCreate",
            EventType::DialogOpen => "DialogOpen",
            EventType::MessageDispatch => "MessageDispatch",
            EventType::CryptoOp => "CryptoOp",
            EventType::DiskRead => "DiskRead",
            EventType::DiskWrite => "DiskWrite",
        }
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One stack-walk frame: the module, symbol and return address the walker
/// resolved.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StackFrame {
    /// Module name, e.g. `"vim"`, `"ntdll"`.
    pub module: String,
    /// Function (symbol) name within the module.
    pub function: String,
    /// Resolved virtual address of the frame.
    pub addr: Va,
    /// Whether the frame belongs to the application image itself (as
    /// opposed to a shared library or the kernel). ETW knows this from the
    /// image-load rundown; we carry it explicitly.
    pub in_app_image: bool,
}

impl StackFrame {
    /// Convenience constructor.
    #[must_use]
    pub fn new(
        module: impl Into<String>,
        function: impl Into<String>,
        addr: Va,
        in_app_image: bool,
    ) -> Self {
        StackFrame { module: module.into(), function: function.into(), addr, in_app_image }
    }

    /// `module!function` notation used in raw logs.
    #[must_use]
    pub fn symbol(&self) -> String {
        format!("{}!{}", self.module, self.function)
    }
}

impl fmt::Display for StackFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}!{}", self.addr, self.module, self.function)
    }
}

/// A single traced system event with its stack walk.
///
/// `frames` are stored in **caller order**: `frames[0]` is the outermost
/// application frame (e.g. `main`), the last frame is the innermost kernel
/// frame. The raw log writer reverses this into the innermost-first order a
/// real stack walker reports; the parser restores caller order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysEvent {
    /// Monotone event sequence number within one log.
    pub num: u64,
    /// Event class.
    pub etype: EventType,
    /// Process id of the traced process.
    pub pid: u32,
    /// Thread id that triggered the event.
    pub tid: u32,
    /// Simulated timestamp (ticks since trace start).
    pub timestamp: u64,
    /// Stack walk, outermost (application entry) first.
    pub frames: Vec<StackFrame>,
    /// Ground-truth provenance of the event. Never used by the detection
    /// pipeline; only by evaluation code to compute confusion matrices.
    pub truth: Provenance,
}

/// Ground-truth origin of an event, for evaluation only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Emitted by benign application code.
    Benign,
    /// Emitted by a malicious payload.
    Malicious,
}

impl SysEvent {
    /// Frames belonging to the application image, in caller order.
    pub fn app_frames(&self) -> impl Iterator<Item = &StackFrame> {
        self.frames.iter().filter(|f| f.in_app_image)
    }

    /// Frames belonging to shared libraries / kernel, in caller order.
    pub fn system_frames(&self) -> impl Iterator<Item = &StackFrame> {
        self.frames.iter().filter(|f| !f.in_app_image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_type_roundtrips_through_name() {
        for e in EventType::ALL {
            assert_eq!(EventType::from_name(e.name()), Some(e));
        }
        assert_eq!(EventType::from_name("NotAType"), None);
    }

    #[test]
    fn event_type_discriminants_are_dense_and_unique() {
        for (i, e) in EventType::ALL.iter().enumerate() {
            assert_eq!(e.as_u32() as usize, i);
        }
    }

    #[test]
    fn frame_symbol_format() {
        let f = StackFrame::new("ntdll", "NtWriteFile", Va(0x7ff0), false);
        assert_eq!(f.symbol(), "ntdll!NtWriteFile");
        assert!(f.to_string().contains("ntdll!NtWriteFile"));
    }

    #[test]
    fn app_and_system_frame_partition() {
        let ev = SysEvent {
            num: 1,
            etype: EventType::FileWrite,
            pid: 4,
            tid: 8,
            timestamp: 100,
            frames: vec![
                StackFrame::new("vim", "main", Va(0x400000), true),
                StackFrame::new("vim", "buf_write", Va(0x401000), true),
                StackFrame::new("kernel32", "WriteFile", Va(0x7ff1), false),
                StackFrame::new("ntdll", "NtWriteFile", Va(0x7ff2), false),
            ],
            truth: Provenance::Benign,
        };
        assert_eq!(ev.app_frames().count(), 2);
        assert_eq!(ev.system_frames().count(), 2);
        assert_eq!(ev.app_frames().next().unwrap().function, "main");
    }
}
