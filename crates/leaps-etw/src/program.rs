//! Synthetic program models: seeded call graphs whose leaves invoke
//! system APIs.
//!
//! A [`ProgramSpec`] describes a program's *behaviour profile* as a set of
//! [`ActivityProfile`]s (e.g. "file editing", "network session"). Each
//! activity is realized as a subtree of synthetic functions hanging off the
//! program root; leaf functions are call sites of the activity's APIs.
//! Executing the program (see [`crate::exec`]) performs random walks from
//! the root to a leaf, producing realistic application stack traces:
//! adjacent events share stack prefixes (implicit CFG paths), stacks within
//! one event show the invocation chain (explicit CFG paths).
//!
//! Instantiating the same spec at different base addresses models
//! recompiled/rebased code (the paper's "pure malicious samples" are the
//! payloads recompiled as standalone malware).

use crate::addr::{AddressRange, Va};
use crate::module::{FunctionSym, ModuleImage};
use crate::rng::SimRng;
use crate::syslib::{ApiId, SysCatalog};

/// Index of a function within a [`ProgramModel`].
pub type FuncId = usize;

/// One behaviour of a program: a weighted API mix realized as a dedicated
/// call-tree region.
#[derive(Debug, Clone)]
pub struct ActivityProfile {
    /// Human-readable activity name, e.g. `"file_io"`.
    pub name: &'static str,
    /// Relative share of events this activity generates while enabled.
    pub weight: f64,
    /// APIs the activity invokes, with relative weights. Names must exist
    /// in the [`SysCatalog`].
    pub apis: Vec<(&'static str, f64)>,
    /// Number of synthetic functions in this activity's subtree.
    pub functions: usize,
}

impl ActivityProfile {
    /// Convenience constructor.
    #[must_use]
    pub fn new(
        name: &'static str,
        weight: f64,
        functions: usize,
        apis: &[(&'static str, f64)],
    ) -> Self {
        ActivityProfile { name, weight, apis: apis.to_vec(), functions }
    }
}

/// Static description of a program (application or payload).
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    /// Program/module name, e.g. `"vim"`.
    pub name: String,
    /// Behaviour profile.
    pub activities: Vec<ActivityProfile>,
    /// Seed salt so distinct programs built from the same master seed get
    /// distinct structure.
    pub seed_salt: u64,
}

/// A function node in the instantiated program.
#[derive(Debug, Clone)]
pub struct FuncNode {
    /// Symbol name.
    pub name: String,
    /// Entry address.
    pub addr: Va,
    /// Callees within the program (tree + a few cross links).
    pub callees: Vec<FuncId>,
    /// APIs this function may invoke (leaf call sites), with weights.
    pub apis: Vec<(ApiId, f64)>,
    /// Activity index the function belongs to (`usize::MAX` for the root).
    pub activity: usize,
}

/// An instantiated program laid out at a concrete base address.
#[derive(Debug, Clone)]
pub struct ProgramModel {
    /// The module image (symbols sorted by address).
    pub module: ModuleImage,
    /// All function nodes; index = [`FuncId`].
    pub functions: Vec<FuncNode>,
    /// Root function (`main`).
    pub root: FuncId,
    /// Entry function of each activity, parallel to the spec's activities.
    pub activity_entries: Vec<FuncId>,
    /// Activity weights, parallel to `activity_entries`.
    pub activity_weights: Vec<f64>,
    /// Activity names, parallel to `activity_entries`.
    pub activity_names: Vec<&'static str>,
}

/// Spacing between consecutive synthetic functions.
pub(crate) const FUNC_STRIDE: u64 = 0x80;
/// Offset of the first function from the module base (PE-header-ish gap).
pub(crate) const CODE_START: u64 = 0x1000;

impl ProgramSpec {
    /// Instantiates the spec at `base`, deterministically from `seed`.
    ///
    /// The *structure* (call tree, API assignment) depends only on
    /// `seed ^ seed_salt`; the base address only shifts the layout, so the
    /// same program instantiated at two bases is the same logical code —
    /// exactly how a rebased or appended copy of a payload behaves.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no activities, an activity has no APIs or
    /// zero functions, or an API name is unknown.
    #[must_use]
    pub fn instantiate(&self, base: Va, seed: u64) -> ProgramModel {
        assert!(!self.activities.is_empty(), "program needs >= 1 activity");
        let catalog = SysCatalog::standard();
        let mut rng = SimRng::new(seed ^ self.seed_salt);

        let mut functions: Vec<FuncNode> = Vec::new();
        // Root.
        functions.push(FuncNode {
            name: "main".to_owned(),
            addr: Va(0), // assigned below
            callees: Vec::new(),
            apis: Vec::new(),
            activity: usize::MAX,
        });
        let root: FuncId = 0;

        let mut activity_entries = Vec::with_capacity(self.activities.len());
        let mut activity_weights = Vec::with_capacity(self.activities.len());
        let mut activity_names = Vec::with_capacity(self.activities.len());

        for (act_idx, act) in self.activities.iter().enumerate() {
            assert!(act.functions >= 1, "activity {} has zero functions", act.name);
            assert!(!act.apis.is_empty(), "activity {} has no APIs", act.name);
            let api_ids: Vec<(ApiId, f64)> =
                act.apis.iter().map(|&(name, w)| (catalog.api_id(name), w)).collect();

            // Build the activity subtree: node 0 of the subtree is the entry.
            let first = functions.len();
            for local in 0..act.functions {
                functions.push(FuncNode {
                    name: format!("{}_{}_{}", self.name, act.name, local),
                    addr: Va(0),
                    callees: Vec::new(),
                    apis: Vec::new(),
                    activity: act_idx,
                });
            }
            // Random tree over the subtree: parent of node i (i>0) is a
            // uniformly random earlier node, biasing toward shallow-ish
            // trees with varied fanout.
            for local in 1..act.functions {
                let parent = first + rng.below(local);
                let child = first + local;
                functions[parent].callees.push(child);
            }
            // Leaf nodes (no callees) get 1–3 weighted API call sites;
            // internal nodes occasionally get one too (call sites are not
            // only in leaves in real programs).
            for local in 0..act.functions {
                let id = first + local;
                let is_leaf = functions[id].callees.is_empty();
                let n_apis = if is_leaf {
                    rng.range(1, 3.min(api_ids.len()))
                } else if rng.chance(0.2) {
                    1
                } else {
                    0
                };
                for _ in 0..n_apis {
                    let k = rng.weighted(&api_ids.iter().map(|&(_, w)| w).collect::<Vec<_>>());
                    let (api, w) = api_ids[k];
                    if !functions[id].apis.iter().any(|&(a, _)| a == api) {
                        functions[id].apis.push((api, w));
                    }
                }
            }
            functions[root].callees.push(first);
            activity_entries.push(first);
            activity_weights.push(act.weight);
            activity_names.push(act.name);
        }

        // Interleave addresses across activities: shuffle function order,
        // then assign increasing addresses. This makes unseen-but-benign
        // functions sit *between* seen benign functions in the address
        // space, which is what Algorithm 2's density-array estimation
        // relies on.
        let mut order: Vec<FuncId> = (0..functions.len()).collect();
        rng.shuffle(&mut order);
        for (slot, &fid) in order.iter().enumerate() {
            let jitter = rng.below(0x30) as u64;
            functions[fid].addr = base.offset(CODE_START + slot as u64 * FUNC_STRIDE + jitter);
        }

        let code_end = base.offset(CODE_START + functions.len() as u64 * FUNC_STRIDE + 0x1000);
        let module = ModuleImage::new(
            self.name.clone(),
            AddressRange::new(base, code_end),
            functions.iter().map(|f| FunctionSym { name: f.name.clone(), addr: f.addr }).collect(),
            true,
        );

        ProgramModel { module, functions, root, activity_entries, activity_weights, activity_names }
    }
}

impl ProgramModel {
    /// Samples a call path for one event of `activity`: a root-to-call-site
    /// walk plus the API invoked there.
    ///
    /// Returns the function path (outermost first, starting at `main`) and
    /// the chosen API.
    pub fn sample_call(&self, activity: usize, rng: &mut SimRng) -> (Vec<FuncId>, ApiId) {
        let mut path = vec![self.root];
        let mut cur = self.activity_entries[activity];
        path.push(cur);
        loop {
            let node = &self.functions[cur];
            let can_stop = !node.apis.is_empty();
            let must_stop = node.callees.is_empty();
            if must_stop || (can_stop && rng.chance(0.35)) {
                break;
            }
            cur = *rng.choose(&node.callees);
            path.push(cur);
        }
        // Walk back up until we find a node with an API (internal nodes
        // without call sites delegate to their subtree, so this terminates
        // at a leaf which always has one — except when we stopped early).
        while self.functions[*path.last().expect("non-empty path")].apis.is_empty() {
            // Descend further instead: pick any callee chain to a leaf.
            let node = &self.functions[*path.last().unwrap()];
            let next = *rng.choose(&node.callees);
            path.push(next);
        }
        let node = &self.functions[*path.last().unwrap()];
        let weights: Vec<f64> = node.apis.iter().map(|&(_, w)| w).collect();
        let api = node.apis[rng.weighted(&weights)].0;
        (path, api)
    }

    /// Samples an activity index according to the model's weights,
    /// restricted to `enabled` (indices into the activity list).
    ///
    /// # Panics
    ///
    /// Panics if `enabled` is empty.
    pub fn sample_activity(&self, enabled: &[usize], rng: &mut SimRng) -> usize {
        assert!(!enabled.is_empty(), "no enabled activities");
        let weights: Vec<f64> = enabled.iter().map(|&i| self.activity_weights[i]).collect();
        enabled[rng.weighted(&weights)]
    }

    /// Address of a function.
    #[must_use]
    pub fn addr(&self, id: FuncId) -> Va {
        self.functions[id].addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProgramSpec {
        ProgramSpec {
            name: "demo".into(),
            seed_salt: 7,
            activities: vec![
                ActivityProfile::new(
                    "file",
                    0.6,
                    20,
                    &[("ReadFile", 1.0), ("WriteFile", 1.0), ("CloseHandle", 0.5)],
                ),
                ActivityProfile::new("net", 0.4, 15, &[("send", 1.0), ("recv", 1.0)]),
            ],
        }
    }

    #[test]
    fn instantiation_is_deterministic() {
        let a = spec().instantiate(Va(0x40_0000), 5);
        let b = spec().instantiate(Va(0x40_0000), 5);
        assert_eq!(a.module.functions, b.module.functions);
    }

    #[test]
    fn different_seed_changes_structure() {
        let a = spec().instantiate(Va(0x40_0000), 5);
        let b = spec().instantiate(Va(0x40_0000), 6);
        assert_ne!(a.module.functions, b.module.functions);
    }

    #[test]
    fn rebasing_shifts_every_symbol_uniformly_in_structure() {
        let a = spec().instantiate(Va(0x40_0000), 5);
        let b = spec().instantiate(Va(0x90_0000), 5);
        assert_eq!(a.functions.len(), b.functions.len());
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.name, fb.name);
            assert_eq!(fa.addr.0 - 0x40_0000, fb.addr.0 - 0x90_0000);
        }
    }

    #[test]
    fn all_functions_inside_module_range() {
        let m = spec().instantiate(Va(0x40_0000), 9);
        for f in &m.functions {
            assert!(m.module.range.contains(f.addr), "{} at {}", f.name, f.addr);
        }
    }

    #[test]
    fn sample_call_paths_start_at_main_and_end_at_call_site() {
        let m = spec().instantiate(Va(0x40_0000), 9);
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            let act = m.sample_activity(&[0, 1], &mut rng);
            let (path, _api) = m.sample_call(act, &mut rng);
            assert_eq!(path[0], m.root);
            assert_eq!(path[1], m.activity_entries[act]);
            assert!(!m.functions[*path.last().unwrap()].apis.is_empty());
            // Path edges follow the call graph.
            for w in path.windows(2) {
                if w[0] == m.root {
                    continue; // root->entry edges are explicit
                }
                assert!(m.functions[w[0]].callees.contains(&w[1]));
            }
        }
    }

    #[test]
    fn activity_sampling_respects_weights() {
        let m = spec().instantiate(Va(0x40_0000), 9);
        let mut rng = SimRng::new(2);
        let mut counts = [0usize; 2];
        for _ in 0..5000 {
            counts[m.sample_activity(&[0, 1], &mut rng)] += 1;
        }
        // 0.6 vs 0.4 weights.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > 1000);
    }

    #[test]
    fn addresses_interleave_activities() {
        // Sorted by address, the activity sequence should alternate rather
        // than form two contiguous blocks.
        let m = spec().instantiate(Va(0x40_0000), 11);
        let mut by_addr: Vec<_> = m.functions.iter().filter(|f| f.activity != usize::MAX).collect();
        by_addr.sort_by_key(|f| f.addr);
        let switches = by_addr.windows(2).filter(|w| w[0].activity != w[1].activity).count();
        assert!(switches >= 5, "activities not interleaved: {switches} switches");
    }
}
