//! Synthetic OS and ETW-like stack-walk event logging substrate.
//!
//! The LEAPS paper collects its data with Event Tracing for Windows (ETW):
//! system events (syscalls, file I/O, registry, network, process/thread
//! lifecycle) annotated with full stack walks spanning the application
//! image, user-mode shared libraries and the kernel. This crate replaces
//! that data source with a deterministic simulation that produces logs with
//! the same *interface*: numbered events, each carrying an event type and a
//! stack of `(module, function, address)` frames.
//!
//! The simulation is structured exactly like the environment the paper
//! evaluates on:
//!
//! * [`module`] — binary images laid out in a virtual address space;
//! * [`syslib`] — a catalog of Windows-like shared libraries and API
//!   frame-chains (`kernel32!WriteFile → ntdll!NtWriteFile → …`);
//! * [`program`] — per-application synthetic program models (call graphs
//!   whose leaves invoke system APIs), generated from seeded RNG;
//! * [`apps`] — behaviour profiles for the five host applications of the
//!   paper (WinSCP, Chrome, Notepad++, Putty, Vim);
//! * [`payload`] — models of the three malicious payloads (Reverse TCP
//!   shell, Reverse HTTPS shell, `pwddlg` password-dialog injector);
//! * [`attack`] — the two camouflaging strategies (offline infection and
//!   online injection);
//! * [`exec`] — the execution engine that interleaves benign and malicious
//!   activity and emits stack-walked events;
//! * [`logfmt`] — the raw ETL-like textual log format consumed by
//!   `leaps-trace`;
//! * [`scenario`] — the 21 datasets of Table I.
//!
//! # Example
//!
//! ```
//! use leaps_etw::scenario::{GenParams, Scenario};
//!
//! let scenario = Scenario::by_name("vim_reverse_tcp").expect("known dataset");
//! let logs = scenario.generate(&GenParams::small(), 42);
//! assert!(logs.benign.lines().count() > 100);
//! ```

pub mod addr;
pub mod apps;
pub mod attack;
pub mod event;
pub mod exec;
pub mod logfmt;
pub mod module;
pub mod payload;
pub mod program;
pub mod rng;
pub mod scenario;
pub mod syslib;

pub use addr::Va;
pub use event::{EventType, StackFrame, SysEvent};
pub use scenario::{GenParams, RawLogs, Scenario};
