//! Deterministic pseudo-random number generation for the simulation.
//!
//! The whole substrate must be reproducible bit-for-bit from a single `u64`
//! seed (DESIGN.md §6), independent of any external crate's stream
//! stability guarantees. We therefore ship a small, well-known generator:
//! SplitMix64 for seeding/derivation and xoshiro256++ for the main stream.

/// Deterministic RNG used throughout the simulation.
///
/// ```
/// use leaps_etw::rng::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand seeds and derive sub-seeds.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
        }
    }

    /// Derives an independent child generator. `salt` distinguishes
    /// siblings derived from the same parent seed.
    #[must_use]
    pub fn derive(&self, salt: u64) -> SimRng {
        let mut s = self.state[0] ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimRng::new(splitmix64(&mut s))
    }

    /// The full generator state, for checkpointing: a generator restored
    /// with [`SimRng::from_state`] continues the exact same stream.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Restores a generator from a captured [`SimRng::state`].
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state (xoshiro256++ would be stuck there;
    /// no reachable generator ever has it, so it flags a corrupt
    /// checkpoint).
    #[must_use]
    pub fn from_state(state: [u64; 4]) -> SimRng {
        assert!(state.iter().any(|&w| w != 0), "all-zero RNG state is invalid");
        SimRng { state }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result =
            self.state[0].wrapping_add(self.state[3]).rotate_left(23).wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire-style multiply-shift; bias is negligible for our bounds.
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "range lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted() requires positive total weight");
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_is_independent_of_parent_consumption() {
        let parent = SimRng::new(9);
        let mut c1 = parent.derive(5);
        let mut parent2 = SimRng::new(9);
        let _ = parent2.next_u64(); // derive() must not depend on stream position
        let mut c2 = SimRng::new(9).derive(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut rng = SimRng::new(77);
        for _ in 0..13 {
            let _ = rng.next_u64();
        }
        let mut resumed = SimRng::from_state(rng.state());
        for _ in 0..50 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero RNG state")]
    fn zero_state_rejected() {
        let _ = SimRng::from_state([0; 4]);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(44);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = SimRng::new(45);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(46);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn weighted_favors_heavy_entries() {
        let mut rng = SimRng::new(47);
        let weights = [0.05, 0.9, 0.05];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[rng.weighted(&weights)] += 1;
        }
        assert!(counts[1] > counts[0] * 5);
        assert!(counts[1] > counts[2] * 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(48);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(49);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
