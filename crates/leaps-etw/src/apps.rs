//! Behaviour profiles of the five benign host applications used in the
//! paper's evaluation (Table I): WinSCP, Chrome, Notepad++, Putty and Vim.
//!
//! Each profile lists the application's activities with the system APIs it
//! exercises. Profiles deliberately differ in library mix (Chrome is
//! network/crypto heavy, Vim is console/file heavy, Notepad++ is UI/file
//! heavy, …) so per-dataset variation in the reproduced Table I arises the
//! same way it does in the paper: from application behaviour, not from
//! tuning.
//!
//! Every application also carries one **latent activity** that the benign
//! training run does not exercise but mixed runs do (`EXTRA_ACTIVITY`).
//! This reproduces the incomplete-benign-CFG problem Section III-C
//! addresses with the density array: the mixed log contains benign paths
//! missing from the benign CFG.

use crate::addr::Va;
use crate::program::{ActivityProfile, ProgramSpec};

/// The five host applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    WinScp,
    Chrome,
    NotepadPlusPlus,
    Putty,
    Vim,
}

impl AppId {
    /// All applications.
    pub const ALL: [AppId; 5] =
        [AppId::WinScp, AppId::Chrome, AppId::NotepadPlusPlus, AppId::Putty, AppId::Vim];

    /// Dataset-name component, e.g. `"notepad++"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AppId::WinScp => "winscp",
            AppId::Chrome => "chrome",
            AppId::NotepadPlusPlus => "notepad++",
            AppId::Putty => "putty",
            AppId::Vim => "vim",
        }
    }

    /// Parses a dataset-name component.
    #[must_use]
    pub fn from_name(name: &str) -> Option<AppId> {
        AppId::ALL.iter().copied().find(|a| a.name() == name)
    }
}

/// Index (into the spec's activity list) of the latent activity that only
/// mixed/testing runs exercise — always the last activity.
#[must_use]
pub fn latent_activity_index(spec: &ProgramSpec) -> usize {
    spec.activities.len() - 1
}

/// Base address where application images are loaded.
pub const APP_BASE: Va = Va(0x0000_0001_4000_0000);

/// Builds the program spec for an application.
#[must_use]
pub fn app_spec(app: AppId) -> ProgramSpec {
    let activities = match app {
        AppId::WinScp => vec![
            // SFTP/SCP file transfer client: network session + local file I/O.
            ActivityProfile::new(
                "session",
                0.30,
                26,
                &[
                    ("socket", 0.4),
                    ("connect", 0.6),
                    ("getaddrinfo", 0.5),
                    ("send", 1.0),
                    ("recv", 1.2),
                    ("EncryptMessage", 0.7),
                    ("DecryptMessage", 0.7),
                    ("WaitForSingleObject", 0.3),
                ],
            ),
            ActivityProfile::new(
                "transfer",
                0.35,
                30,
                &[
                    ("CreateFileW", 0.6),
                    ("ReadFile", 1.2),
                    ("WriteFile", 1.2),
                    ("CloseHandle", 0.6),
                    ("send", 0.8),
                    ("recv", 0.8),
                    ("FlushFileBuffers", 0.2),
                ],
            ),
            ActivityProfile::new(
                "ui",
                0.20,
                18,
                &[
                    ("GetMessageW", 1.0),
                    ("DispatchMessageW", 1.0),
                    ("CreateWindowExW", 0.2),
                    ("TextOutW", 0.5),
                    ("BitBlt", 0.3),
                ],
            ),
            ActivityProfile::new(
                "config",
                0.10,
                12,
                &[
                    ("RegOpenKeyExW", 0.8),
                    ("RegQueryValueExW", 1.0),
                    ("RegSetValueExW", 0.4),
                    ("CloseHandle", 0.3),
                ],
            ),
            // Latent: directory synchronization, unseen in benign training.
            ActivityProfile::new(
                "dirsync",
                0.05,
                14,
                &[
                    ("GetFileAttributesW", 1.0),
                    ("CreateFileW", 0.6),
                    ("ReadFile", 0.8),
                    ("send", 0.6),
                    ("CloseHandle", 0.4),
                ],
            ),
        ],
        AppId::Chrome => vec![
            // Browser: heavy network, TLS, cache file I/O, rendering.
            ActivityProfile::new(
                "net",
                0.40,
                34,
                &[
                    ("getaddrinfo", 0.6),
                    ("connect", 0.8),
                    ("WSASend", 1.2),
                    ("WSARecv", 1.4),
                    ("closesocket", 0.3),
                    ("socket", 0.4),
                ],
            ),
            ActivityProfile::new(
                "tls",
                0.20,
                20,
                &[
                    ("AcquireCredentialsHandleW", 0.3),
                    ("InitializeSecurityContextW", 0.6),
                    ("EncryptMessage", 1.0),
                    ("DecryptMessage", 1.0),
                ],
            ),
            ActivityProfile::new(
                "cache",
                0.15,
                22,
                &[
                    ("CreateFileW", 0.8),
                    ("ReadFile", 1.0),
                    ("WriteFile", 1.0),
                    ("MapViewOfFile", 0.5),
                    ("CloseHandle", 0.5),
                ],
            ),
            ActivityProfile::new(
                "render",
                0.20,
                26,
                &[
                    ("BitBlt", 1.0),
                    ("TextOutW", 0.8),
                    ("GetMessageW", 0.8),
                    ("DispatchMessageW", 0.8),
                    ("malloc", 0.5),
                ],
            ),
            // Latent: extension loading path.
            ActivityProfile::new(
                "extension",
                0.05,
                14,
                &[
                    ("LoadLibraryW", 0.7),
                    ("GetProcAddress", 1.0),
                    ("CreateFileW", 0.5),
                    ("ReadFile", 0.6),
                ],
            ),
        ],
        AppId::NotepadPlusPlus => vec![
            // Text editor: UI-message-pump heavy, file I/O, config registry.
            ActivityProfile::new(
                "editor",
                0.40,
                30,
                &[
                    ("GetMessageW", 1.2),
                    ("DispatchMessageW", 1.2),
                    ("TextOutW", 1.0),
                    ("CreateWindowExW", 0.2),
                    ("malloc", 0.4),
                ],
            ),
            ActivityProfile::new(
                "file",
                0.30,
                26,
                &[
                    ("CreateFileW", 0.8),
                    ("ReadFile", 1.0),
                    ("WriteFile", 0.9),
                    ("CloseHandle", 0.6),
                    ("GetFileAttributesW", 0.4),
                ],
            ),
            ActivityProfile::new(
                "config",
                0.15,
                14,
                &[
                    ("RegOpenKeyExW", 0.8),
                    ("RegQueryValueExW", 1.0),
                    ("RegSetValueExW", 0.3),
                    ("fopen", 0.4),
                    ("fread", 0.5),
                ],
            ),
            ActivityProfile::new(
                "plugins",
                0.10,
                12,
                &[("LoadLibraryW", 0.8), ("GetProcAddress", 1.0), ("malloc", 0.3)],
            ),
            // Latent: print/export path.
            ActivityProfile::new(
                "export",
                0.05,
                12,
                &[("fwrite", 1.0), ("fopen", 0.6), ("BitBlt", 0.4), ("CloseHandle", 0.3)],
            ),
        ],
        AppId::Putty => vec![
            // SSH terminal: network + console rendering.
            ActivityProfile::new(
                "ssh",
                0.45,
                30,
                &[
                    ("socket", 0.3),
                    ("connect", 0.5),
                    ("send", 1.2),
                    ("recv", 1.4),
                    ("EncryptMessage", 0.6),
                    ("DecryptMessage", 0.6),
                    ("getaddrinfo", 0.3),
                ],
            ),
            ActivityProfile::new(
                "terminal",
                0.35,
                24,
                &[
                    ("TextOutW", 1.2),
                    ("GetMessageW", 1.0),
                    ("DispatchMessageW", 1.0),
                    ("BitBlt", 0.4),
                    ("ReadConsoleW", 0.3),
                ],
            ),
            ActivityProfile::new(
                "config",
                0.15,
                12,
                &[("RegOpenKeyExW", 0.8), ("RegQueryValueExW", 1.0), ("RegSetValueExW", 0.4)],
            ),
            // Latent: port-forwarding path.
            ActivityProfile::new(
                "forwarding",
                0.05,
                12,
                &[
                    ("socket", 0.6),
                    ("connect", 0.5),
                    ("send", 1.0),
                    ("recv", 1.0),
                    ("closesocket", 0.4),
                ],
            ),
        ],
        AppId::Vim => vec![
            // Console editor: file + console I/O, swap files.
            ActivityProfile::new(
                "edit",
                0.45,
                28,
                &[("ReadConsoleW", 1.2), ("WriteConsoleW", 1.2), ("malloc", 0.5), ("fread", 0.4)],
            ),
            ActivityProfile::new(
                "file",
                0.30,
                24,
                &[
                    ("fopen", 0.8),
                    ("fread", 1.0),
                    ("fwrite", 1.0),
                    ("CloseHandle", 0.4),
                    ("GetFileAttributesW", 0.4),
                ],
            ),
            ActivityProfile::new(
                "swap",
                0.20,
                16,
                &[
                    ("WriteFile", 1.0),
                    ("FlushFileBuffers", 0.6),
                    ("CreateFileW", 0.4),
                    ("CloseHandle", 0.4),
                ],
            ),
            // Latent: plugin/script sourcing.
            ActivityProfile::new(
                "scripting",
                0.05,
                12,
                &[("fopen", 0.8), ("fread", 1.2), ("malloc", 0.5), ("WriteConsoleW", 0.4)],
            ),
        ],
    };
    ProgramSpec {
        name: app.name().replace("++", "pp"),
        activities,
        seed_salt: 0x5eed_0000 + app as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syslib::SysCatalog;

    #[test]
    fn names_roundtrip() {
        for app in AppId::ALL {
            assert_eq!(AppId::from_name(app.name()), Some(app));
        }
        assert_eq!(AppId::from_name("emacs"), None);
    }

    #[test]
    fn every_profile_references_known_apis() {
        let catalog = SysCatalog::standard();
        for app in AppId::ALL {
            let spec = app_spec(app);
            assert!(spec.activities.len() >= 4, "{:?}", app);
            for act in &spec.activities {
                for &(api, w) in &act.apis {
                    let _ = catalog.api_id(api); // panics on unknown
                    assert!(w > 0.0);
                }
            }
        }
    }

    #[test]
    fn all_apps_instantiate() {
        for app in AppId::ALL {
            let model = app_spec(app).instantiate(APP_BASE, 33);
            assert!(model.functions.len() > 50, "{:?}", app);
            assert_eq!(model.activity_entries.len(), app_spec(app).activities.len());
        }
    }

    #[test]
    fn latent_activity_is_last_and_light() {
        for app in AppId::ALL {
            let spec = app_spec(app);
            let idx = latent_activity_index(&spec);
            assert_eq!(idx, spec.activities.len() - 1);
            assert!(spec.activities[idx].weight <= 0.10);
        }
    }

    #[test]
    fn profiles_are_distinct_across_apps() {
        let specs: Vec<_> = AppId::ALL.iter().map(|&a| app_spec(a)).collect();
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(
                    a.activities.iter().map(|x| x.name).collect::<Vec<_>>(),
                    b.activities.iter().map(|x| x.name).collect::<Vec<_>>(),
                );
            }
        }
    }
}
