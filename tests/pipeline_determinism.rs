//! Reproducibility guarantees (DESIGN.md §6): every stage of the pipeline
//! is a pure function of its explicit seed.

use leaps::core::experiment::Experiment;
use leaps::core::pipeline::Method;
use leaps::etw::scenario::{GenParams, Scenario};

#[test]
fn raw_log_generation_is_bit_for_bit_reproducible() {
    let scenario = Scenario::by_name("chrome_reverse_https").unwrap();
    let a = scenario.generate(&GenParams::small(), 77);
    let b = scenario.generate(&GenParams::small(), 77);
    assert_eq!(a.benign, b.benign);
    assert_eq!(a.mixed, b.mixed);
    assert_eq!(a.malicious, b.malicious);
}

#[test]
fn full_experiment_metrics_are_reproducible() {
    let experiment = Experiment::fast();
    let scenario = Scenario::by_name("notepad++_reverse_tcp_online").unwrap();
    for method in Method::ALL {
        let a = experiment.run(scenario, method).unwrap();
        let b = experiment.run(scenario, method).unwrap();
        assert_eq!(a, b, "{method:?} not reproducible");
    }
}

#[test]
fn master_seed_changes_propagate_everywhere() {
    let scenario = Scenario::by_name("putty_reverse_tcp").unwrap();
    let mut exp_a = Experiment::fast();
    let mut exp_b = Experiment::fast();
    exp_a.seed = 1;
    exp_b.seed = 2;
    let a = exp_a.run(scenario, Method::Wsvm).unwrap();
    let b = exp_b.run(scenario, Method::Wsvm).unwrap();
    assert_ne!(a, b, "different seeds should give different metrics");
}

#[test]
fn scenario_identity_is_baked_into_generation() {
    // The same seed on different scenarios must not alias.
    let a = Scenario::by_name("vim_reverse_tcp").unwrap().generate(&GenParams::small(), 3);
    let b = Scenario::by_name("vim_reverse_tcp_online").unwrap().generate(&GenParams::small(), 3);
    assert_ne!(a.mixed, b.mixed);
    assert_ne!(a.benign, b.benign);
}

#[test]
fn per_run_seeds_differ_within_an_experiment() {
    // With 2 runs, the averaged metrics generally differ from any single
    // run — indirect evidence the runs used different derived seeds.
    let scenario = Scenario::by_name("winscp_reverse_tcp").unwrap();
    let two_runs = Experiment { runs: 2, ..Experiment::fast() };
    let one_run = Experiment { runs: 1, ..Experiment::fast() };
    let avg = two_runs.run(scenario, Method::CGraph).unwrap();
    let single = one_run.run(scenario, Method::CGraph).unwrap();
    assert_ne!(avg, single);
}
