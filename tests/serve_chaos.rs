//! Chaos-under-supervision invariants of the self-healing service
//! layer (DESIGN.md §12):
//!
//! * a property test proving that deliberately panicking pool jobs
//!   interleaved with a real event stream leave every verdict and every
//!   counter **bit-identical** to the same stream on a never-panicking
//!   pool, at worker counts {1, 2, 4, 8};
//! * a daemon-level chaos test: one client killed mid-stream (no BYE,
//!   no CLOSE) plus injected panicking jobs, while a clean session keeps
//!   streaming — the daemon must keep serving, report the respawns over
//!   `HEALTH`, stay bit-identical on the clean session, and still drain
//!   and exit on `SHUTDOWN`.

use leaps::cgraph::classify::CallGraphClassifier;
use leaps::cgraph::graph::CallGraph;
use leaps::core::persist::save_classifier;
use leaps::core::pipeline::Classifier;
use leaps::core::stream::{StreamDetector, Verdict};
use leaps::etw::event::{EventType, StackFrame};
use leaps::etw::Va;
use leaps::serve::{
    BufferSink, Client, Command, Endpoint, Reply, Server, ServerConfig, VerdictSink,
};
use leaps::trace::partition::PartitionedEvent;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// `sys!a → sys!b` benign, `sys!x → sys!y` malicious-only.
fn tiny_classifier() -> Classifier {
    let chain_b = vec!["sys!a".to_owned(), "sys!b".to_owned()];
    let chain_m = vec!["sys!x".to_owned(), "sys!y".to_owned()];
    let bcg = CallGraph::from_parts([("sys!a".to_owned(), "sys!b".to_owned())], [chain_b.clone()]);
    let mcg = CallGraph::from_parts(
        [("sys!a".to_owned(), "sys!b".to_owned()), ("sys!x".to_owned(), "sys!y".to_owned())],
        [chain_b, chain_m],
    );
    Classifier::CGraph(CallGraphClassifier::from_parts(bcg, mcg))
}

fn event(num: u64, benign: bool) -> PartitionedEvent {
    let (m1, f1, m2, f2) = if benign { ("sys", "a", "sys", "b") } else { ("sys", "x", "sys", "y") };
    PartitionedEvent {
        num,
        etype: EventType::FileRead,
        tid: 1,
        app_stack: vec![StackFrame::new("app", "main", Va(0x40_0000 + num), true)],
        system_stack: vec![
            StackFrame::new(m1, f1, Va(0x7000_0000 + num), false),
            StackFrame::new(m2, f2, Va(0x7000_1000 + num), false),
        ],
        truth: None,
    }
}

fn models_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("leaps-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("tiny.model"), save_classifier(&tiny_classifier())).unwrap();
    dir
}

/// Runs `streams` through a server with `workers` threads, injecting a
/// panicking pool job before every `panic_every`-th submit (0 = never),
/// and returns the per-session verdict sequences plus (submitted,
/// verdicts) counters.
fn run_streams(
    dir: &PathBuf,
    workers: usize,
    streams: &[Vec<PartitionedEvent>],
    panic_every: usize,
) -> (Vec<Vec<Verdict>>, Vec<(u64, u64)>, u64) {
    let server = Server::new(&ServerConfig {
        workers,
        queue_cap: 1 << 20, // determinism test: no shedding
        ..ServerConfig::new(dir)
    });
    let sinks: Vec<Arc<BufferSink>> = streams.iter().map(|_| Arc::new(BufferSink::new())).collect();
    for (i, sink) in sinks.iter().enumerate() {
        let sink = Arc::clone(sink) as Arc<dyn VerdictSink>;
        server.open("chaos", i as u32, "tiny", sink).unwrap();
    }
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    let mut submits = 0usize;
    let mut injected = 0u64;
    for n in 0..longest {
        for (i, stream) in streams.iter().enumerate() {
            if let Some(e) = stream.get(n) {
                if panic_every > 0 && submits.is_multiple_of(panic_every) {
                    // A crashing job on the same shards the sessions use.
                    server.inject_panic_job(submits / panic_every);
                    injected += 1;
                }
                submits += 1;
                server.submit("chaos", i as u32, e.clone()).unwrap();
            }
        }
    }
    let mut verdicts = Vec::new();
    let mut counters = Vec::new();
    for (i, sink) in sinks.iter().enumerate() {
        let report = server.close("chaos", i as u32).unwrap();
        counters.push((report.submitted, report.verdicts));
        verdicts.push(sink.take());
    }
    // A dying worker counts its panic while unwinding, which can lag
    // behind the successor finishing the drains `close` waited on.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut stats = server.stats();
    while stats.panics < injected || stats.respawns < injected {
        assert!(std::time::Instant::now() < deadline, "injected panics never counted: {stats:?}");
        std::thread::sleep(std::time::Duration::from_millis(2));
        stats = server.stats();
    }
    (verdicts, counters, stats.respawns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn panicking_jobs_never_change_a_verdict(
        workers in prop::sample::select(vec![1usize, 2, 4, 8]),
        sessions in 1usize..4,
        len in 8usize..40,
        panic_every in 2usize..6,
        malice_seed in prop::num::u64::ANY,
    ) {
        let dir = models_dir(&format!("prop-{workers}-{sessions}-{len}-{panic_every}"));
        let streams: Vec<Vec<PartitionedEvent>> = (0..sessions)
            .map(|s| {
                (0..len)
                    .map(|n| {
                        let num = (sessions * n + s) as u64;
                        // Deterministic benign/malicious mix per seed.
                        let benign = (malice_seed >> (n % 64)) & 1 == 0;
                        event(num, benign)
                    })
                    .collect()
            })
            .collect();

        // Reference: the same streams with no panics, one worker.
        let (clean_v, clean_c, clean_r) = run_streams(&dir, 1, &streams, 0);
        prop_assert_eq!(clean_r, 0);
        // And against standalone detectors, transitively anchoring both.
        for (stream, verdicts) in streams.iter().zip(&clean_v) {
            let mut standalone = StreamDetector::new(tiny_classifier());
            prop_assert_eq!(&standalone.push_all(stream.iter().cloned()), verdicts);
        }

        let (chaos_v, chaos_c, chaos_r) = run_streams(&dir, workers, &streams, panic_every);
        prop_assert!(chaos_r > 0, "injection plan must bite");
        prop_assert_eq!(chaos_v, clean_v);
        prop_assert_eq!(chaos_c, clean_c);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The acceptance-criteria chaos drill, end to end over the daemon: a
/// victim client is killed mid-stream (connection dropped, no CLOSE), a
/// panicking job is injected, and a clean session keeps streaming. The
/// daemon must survive all of it, stay bit-identical on the clean
/// session, reflect the respawn in `HEALTH`, and drain on `SHUTDOWN`.
#[test]
fn daemon_survives_killed_client_and_panicking_jobs() {
    let dir = models_dir("daemon");
    let server = Arc::new(Server::new(&ServerConfig { workers: 2, ..ServerConfig::new(&dir) }));
    let bound = Endpoint::Tcp("127.0.0.1:0".to_owned()).bind().unwrap();
    let endpoint = bound.endpoint().clone();
    let daemon_server = Arc::clone(&server);
    let daemon = std::thread::spawn(move || bound.run(&daemon_server).unwrap());

    let clean_events: Vec<PartitionedEvent> = (0..40).map(|n| event(n, n % 4 != 0)).collect();
    let mut clean_verdicts: Vec<(u32, Verdict)> = Vec::new();
    let mut clean = Client::connect(&endpoint).unwrap();
    clean.expect_ok(&Command::Hello { client: "clean".into() }, &mut clean_verdicts).unwrap();
    clean.expect_ok(&Command::Open { pid: 1, model: "tiny".into() }, &mut clean_verdicts).unwrap();

    // The victim starts streaming and is "kill -9"ed mid-stream: its
    // connection drops without CLOSE or BYE mid-session.
    let mut victim_verdicts = Vec::new();
    let mut victim = Client::connect(&endpoint).unwrap();
    victim.expect_ok(&Command::Hello { client: "victim".into() }, &mut victim_verdicts).unwrap();
    victim
        .expect_ok(&Command::Open { pid: 2, model: "tiny".into() }, &mut victim_verdicts)
        .unwrap();
    for n in 0..7 {
        victim
            .request(&Command::Event { pid: 2, event: event(n, true) }, &mut victim_verdicts)
            .unwrap();
    }
    drop(victim); // SIGKILL, as seen from the daemon

    // Panicking jobs land on both shards while the clean client streams.
    for (n, e) in clean_events.iter().enumerate() {
        if n == 5 || n == 20 {
            server.inject_panic_job(n);
        }
        let ack = clean
            .request(&Command::Event { pid: 1, event: e.clone() }, &mut clean_verdicts)
            .unwrap();
        assert!(ack.is_ack());
    }
    let detail = clean.expect_ok(&Command::Close { pid: 1 }, &mut clean_verdicts).unwrap();
    assert!(detail.contains("submitted=40"), "{detail}");

    // Bit-identical verdicts on the clean session, panics and all.
    let mut standalone = StreamDetector::new(tiny_classifier());
    let expected = standalone.push_all(clean_events.iter().cloned());
    let got: Vec<Verdict> =
        clean_verdicts.iter().filter(|(pid, _)| *pid == 1).map(|(_, v)| v.clone()).collect();
    assert_eq!(got, expected, "clean session diverged under chaos");

    // The victim's abandoned session was closed by connection teardown.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().sessions > 0 {
        assert!(std::time::Instant::now() < deadline, "victim session never cleaned up");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // HEALTH (no HELLO needed) reflects the supervision counters.
    while server.stats().respawns < 2 {
        assert!(std::time::Instant::now() < deadline, "injected panics never counted");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let mut probe = Client::connect(&endpoint).unwrap();
    let detail = probe.expect_ok(&Command::Health, &mut Vec::new()).unwrap();
    assert!(detail.contains("panics=2"), "{detail}");
    assert!(detail.contains("respawns=2"), "{detail}");
    assert!(detail.contains("sessions=0"), "{detail}");

    // PANIC over the wire is env-gated; without LEAPS_CHAOS it refuses.
    if std::env::var("LEAPS_CHAOS").is_err() {
        let ack = probe.request(&Command::Panic { shard: 0 }, &mut Vec::new()).unwrap();
        assert!(matches!(ack, Reply::Err { family, .. } if family == "proto"));
    }

    // Graceful SHUTDOWN still drains and returns — no hang, no abort.
    probe.expect_ok(&Command::Hello { client: "probe".into() }, &mut Vec::new()).unwrap();
    probe.expect_ok(&Command::Shutdown, &mut Vec::new()).unwrap();
    drop(probe);
    drop(clean);
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
