//! Property-based tests on cross-crate invariants: arbitrary inputs
//! flowing through parser ↔ writer, CFG inference, weight assessment and
//! the SVM must uphold their contracts.

use leaps::cfg::graph::Cfg;
use leaps::cfg::infer::infer_cfg;
use leaps::cfg::weight::{assess_weights, WeightConfig};
use leaps::cluster::dissim::jaccard_dissimilarity;
use leaps::etw::addr::Va;
use leaps::etw::event::{EventType, Provenance, StackFrame, SysEvent};
use leaps::etw::logfmt::write_log;
use leaps::svm::data::{Sample, TrainSet};
use leaps::svm::kernel::Kernel;
use leaps::svm::smo::{train, SmoParams};
use leaps::trace::parser::parse_log;
use leaps::trace::partition::partition_events;
use proptest::prelude::*;

/// Strategy: an arbitrary module name drawn from system + app modules.
fn module_name() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["ntdll", "kernel32", "ws2_32", "tcpip", "vim", "myapp", "<anon>"])
}

fn frame() -> impl Strategy<Value = StackFrame> {
    (module_name(), 0u32..40, 0u64..0xffff_ffff).prop_map(|(module, fidx, addr)| {
        StackFrame::new(module, format!("f{fidx}"), Va(addr), false)
    })
}

fn event(num: u64) -> impl Strategy<Value = SysEvent> {
    (
        prop::sample::select(EventType::ALL.to_vec()),
        prop::collection::vec(frame(), 1..12),
        0u32..9999,
        0u32..9999,
        prop::bool::ANY,
    )
        .prop_map(move |(etype, frames, pid, tid, malicious)| SysEvent {
            num,
            etype,
            pid,
            tid,
            timestamp: num * 17,
            frames,
            truth: if malicious { Provenance::Malicious } else { Provenance::Benign },
        })
}

fn event_log() -> impl Strategy<Value = Vec<SysEvent>> {
    prop::collection::vec(prop::num::u8::ANY, 1..40).prop_flat_map(|nums| {
        let strategies: Vec<_> =
            nums.iter().enumerate().map(|(i, _)| event(i as u64 + 1)).collect();
        strategies
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writer → parser roundtrips every field of arbitrary events.
    #[test]
    fn log_roundtrip(events in event_log()) {
        let raw = write_log(&events);
        let parsed = parse_log(&raw).expect("generated logs always parse");
        prop_assert_eq!(parsed.events.len(), events.len());
        for (orig, got) in events.iter().zip(&parsed.events) {
            prop_assert_eq!(got.num, orig.num);
            prop_assert_eq!(got.etype, orig.etype);
            prop_assert_eq!(got.pid, orig.pid);
            prop_assert_eq!(got.tid, orig.tid);
            prop_assert_eq!(got.timestamp, orig.timestamp);
            prop_assert_eq!(got.truth, Some(orig.truth));
            prop_assert_eq!(got.frames.len(), orig.frames.len());
            for (fo, fg) in orig.frames.iter().zip(&got.frames) {
                prop_assert_eq!(&fg.module, &fo.module);
                prop_assert_eq!(&fg.function, &fo.function);
                prop_assert_eq!(fg.addr, fo.addr);
            }
        }
    }

    /// Partitioning never loses or duplicates frames, and classifies by
    /// module catalog membership.
    #[test]
    fn partition_is_a_partition(events in event_log()) {
        let raw = write_log(&events);
        let parsed = parse_log(&raw).unwrap();
        for (orig, part) in parsed.events.iter().zip(partition_events(&parsed.events)) {
            prop_assert_eq!(
                part.app_stack.len() + part.system_stack.len(),
                orig.frames.len()
            );
            for f in &part.app_stack {
                prop_assert!(f.in_app_image);
            }
            for f in &part.system_stack {
                prop_assert!(!f.in_app_image);
            }
        }
    }

    /// CFG inference: every explicit invocation pair of every app stack is
    /// an edge, and the event map points back at real edges.
    #[test]
    fn cfg_inference_covers_explicit_paths(events in event_log()) {
        let raw = write_log(&events);
        let parsed = parse_log(&raw).unwrap();
        let partitioned = partition_events(&parsed.events);
        let out = infer_cfg(&partitioned);
        for e in &partitioned {
            let addrs: Vec<Va> = e.app_stack.iter().map(|f| f.addr).collect();
            for w in addrs.windows(2) {
                prop_assert!(out.cfg.has_edge(w[0], w[1]));
            }
        }
        for (&(s, t), nums) in &out.edge_events {
            prop_assert!(out.cfg.has_edge(s, t));
            prop_assert!(!nums.is_empty());
        }
    }

    /// Weight assessment always yields benignity in [0, 1], and an empty
    /// benign CFG scores everything fully malicious.
    #[test]
    fn weights_stay_in_unit_interval(events in event_log()) {
        let raw = write_log(&events);
        let parsed = parse_log(&raw).unwrap();
        let partitioned = partition_events(&parsed.events);
        let mixed = infer_cfg(&partitioned);
        let half = partitioned.len() / 2;
        let benign = infer_cfg(&partitioned[..half]);
        let weights = assess_weights(&benign.cfg, &mixed, WeightConfig::default());
        for (_, b) in weights.iter() {
            prop_assert!((0.0..=1.0).contains(&b));
        }
        let empty = Cfg::new();
        let zero = assess_weights(&empty, &mixed, WeightConfig::default());
        for (_, b) in zero.iter() {
            prop_assert_eq!(b, 0.0);
        }
    }

    /// Jaccard dissimilarity is a bounded, symmetric semimetric with
    /// identity of indiscernibles on arbitrary string sets.
    #[test]
    fn jaccard_properties(
        a in prop::collection::btree_set("[a-f]{1,3}", 0..8),
        b in prop::collection::btree_set("[a-f]{1,3}", 0..8),
    ) {
        let av: Vec<&String> = a.iter().collect();
        let bv: Vec<&String> = b.iter().collect();
        let dab = jaccard_dissimilarity(&av, &bv);
        let dba = jaccard_dissimilarity(&bv, &av);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(jaccard_dissimilarity(&av, &av), 0.0);
        if a == b {
            prop_assert_eq!(dab, 0.0);
        } else {
            prop_assert!(dab > 0.0);
        }
    }

    /// The SMO solution always satisfies the dual constraints:
    /// Σ αᵢyᵢ = 0 and 0 ≤ αᵢ ≤ λ·cᵢ.
    #[test]
    fn smo_respects_dual_constraints(
        xs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..=1.0), 4..24),
        lambda in 0.5f64..50.0,
    ) {
        // First half positive, second half negative (so both classes exist).
        let n = xs.len();
        let samples: Vec<Sample> = xs
            .iter()
            .enumerate()
            .map(|(i, &(x0, x1, c))| {
                let y = if i < n / 2 { 1.0 } else { -1.0 };
                // Positives get weight 1 as in the pipeline.
                let c = if y > 0.0 { 1.0 } else { c };
                Sample::new(vec![x0, x1], y, c)
            })
            .collect();
        let set = TrainSet::new(samples).expect("two classes by construction");
        let model = train(
            &set,
            Kernel::Gaussian { sigma2: 1.0 },
            &SmoParams { lambda, ..Default::default() },
        );
        let mut balance = 0.0;
        for (alpha_y, sv) in model.dual_coefficients() {
            balance += alpha_y;
            let matching: Vec<&Sample> = set
                .samples()
                .iter()
                .filter(|s| &s.x == sv)
                .collect();
            prop_assert!(!matching.is_empty());
            let max_cap = matching
                .iter()
                .map(|s| lambda * s.c)
                .fold(0.0f64, f64::max);
            prop_assert!(alpha_y.abs() <= max_cap * matching.len() as f64 + 1e-7);
        }
        prop_assert!(balance.abs() < 1e-6, "balance {balance}");
    }
}
