//! Crash-recovery properties: interrupting SMO, Baum–Welch or the CV
//! grid search after ANY checkpoint boundary and resuming — with the
//! captured state round-tripped through the serialized `LEAPS-CKPT v1`
//! text format — reproduces the uninterrupted result bit for bit.
//!
//! These are the workspace-level counterparts of the per-crate pause
//! tests: they additionally cross the persistence layer, so a format
//! regression (lossy float encoding, dropped payload line) fails here
//! even if the in-memory pause logic is sound.

use leaps::core::persist::{
    cv_checkpoint, cv_state, hmm_checkpoint, hmm_state, load_checkpoint, save_checkpoint,
    smo_checkpoint, smo_state,
};
use leaps::etw::rng::SimRng;
use leaps::hmm::hmm::{Hmm, HmmParams};
use leaps::svm::cv::GridSearch;
use leaps::svm::data::{Sample, TrainSet};
use leaps::svm::kernel::Kernel;
use leaps::svm::smo::{train, train_resumable, SmoParams};
use proptest::prelude::*;

/// Two jittered blobs with non-uniform weights; overlap keeps the SMO
/// working set and the CV fold scores non-trivial.
fn blob_set(seed: u64, per_class: usize) -> TrainSet {
    let mut rng = SimRng::new(seed ^ 0xb10b);
    let mut samples = Vec::new();
    for _ in 0..per_class {
        let jx = rng.f64() * 0.25;
        let jy = rng.f64() * 0.25;
        samples.push(Sample::new(vec![0.1 + jx, 0.15 + jy], 1.0, 0.5 + rng.f64() / 2.0));
        samples.push(Sample::new(vec![0.4 + jx, 0.35 + jy], -1.0, 0.5 + rng.f64() / 2.0));
    }
    TrainSet::new(samples).expect("two non-degenerate classes")
}

fn symbol_corpus(seed: u64, count: usize, symbols: usize) -> Vec<Vec<usize>> {
    let mut rng = SimRng::new(seed ^ 0xc0de);
    (0..count).map(|_| (0..30).map(|_| rng.below(symbols)).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn smo_resumes_bit_identically_from_any_iteration(
        seed in 0u64..500,
        pause_at in 1usize..60,
    ) {
        let set = blob_set(seed, 12);
        let kernel = Kernel::Gaussian { sigma2: 2.0 };
        let params = SmoParams::default();
        let reference = train(&set, kernel, &params);
        let mut captured = None;
        let mut offers = 0usize;
        let paused = train_resumable(&set, kernel, &params, None, 1, &mut |s| {
            offers += 1;
            if offers == pause_at {
                captured = Some(s.clone());
                false
            } else {
                true
            }
        });
        match paused {
            // The solver converged before the chosen pause point.
            Some(model) => prop_assert_eq!(&reference, &model),
            None => {
                let state = captured.expect("paused without a captured state");
                let text = save_checkpoint(&smo_checkpoint(&state, 7, [1, 2, 3, 4]));
                let state = smo_state(&load_checkpoint(&text).unwrap()).unwrap();
                let resumed =
                    train_resumable(&set, kernel, &params, Some(state), 0, &mut |_| true)
                        .expect("non-checkpointing resume cannot pause");
                prop_assert_eq!(&reference, &resumed);
            }
        }
    }

    #[test]
    fn baum_welch_resumes_bit_identically_from_any_iteration(
        seed in 0u64..500,
        pause_at in 1usize..10,
    ) {
        let symbols = 6usize;
        let seqs = symbol_corpus(seed, 3, symbols);
        let params = HmmParams { states: 3, iterations: 8, seed, ..HmmParams::default() };
        let reference = Hmm::train(&seqs, symbols, &params);
        let mut captured = None;
        let mut offers = 0usize;
        let paused = Hmm::train_resumable(&seqs, symbols, &params, None, &mut |s| {
            offers += 1;
            if offers == pause_at {
                captured = Some(s.clone());
                false
            } else {
                true
            }
        });
        match paused {
            Some(model) => prop_assert_eq!(&reference, &model),
            None => {
                let state = captured.expect("paused without a captured state");
                let text = save_checkpoint(&hmm_checkpoint(&state, 7));
                let state = hmm_state(&load_checkpoint(&text).unwrap()).unwrap();
                let resumed =
                    Hmm::train_resumable(&seqs, symbols, &params, Some(state), &mut |_| true)
                        .expect("non-checkpointing resume cannot pause");
                prop_assert_eq!(&reference, &resumed);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn cv_grid_resumes_bit_identically_from_any_chunk(
        seed in 0u64..500,
        pause_at in 1usize..8,
    ) {
        let set = blob_set(seed, 10);
        let gs = GridSearch {
            lambdas: vec![1.0, 10.0],
            sigma2s: vec![2.0, 8.0, 32.0],
            folds: 3,
            seed,
            ..GridSearch::default()
        };
        let reference = gs.run(&set);
        let mut captured = None;
        let mut offers = 0usize;
        let paused = gs.run_resumable(&set, None, &mut |s| {
            offers += 1;
            if offers == pause_at {
                captured = Some(s.clone());
                false
            } else {
                true
            }
        });
        match paused {
            Some(result) => prop_assert_eq!(reference, result),
            None => {
                let state = captured.expect("paused without a captured state");
                let text = save_checkpoint(&cv_checkpoint(&state, 7, [1, 2, 3, 4]));
                let state = cv_state(&load_checkpoint(&text).unwrap()).unwrap();
                let resumed = gs
                    .run_resumable(&set, Some(state), &mut |_| true)
                    .expect("non-checkpointing resume cannot pause");
                prop_assert_eq!(reference, resumed);
            }
        }
    }
}
