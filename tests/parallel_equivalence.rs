//! Parallel/serial equivalence: every `leaps_par` fan-out (kernel
//! matrix, CV grid, pairwise distances) must be bit-identical to the
//! serial path at any thread count, including grid-search tie-breaking.

use leaps::cluster::dissim::{jaccard_dissimilarity, DistanceMatrix};
use leaps::core::config::PipelineConfig;
use leaps::core::dataset::Dataset;
use leaps::core::par;
use leaps::core::pipeline::{train_classifier, Method};
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::svm::cv::GridSearch;
use leaps::svm::data::{Sample, TrainSet};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that mutate the process-global thread override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` with the thread count forced to `threads`, restoring the
/// default afterwards.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    par::set_thread_override(Some(threads));
    let out = f();
    par::set_thread_override(None);
    out
}

fn blob_set() -> TrainSet {
    // Two overlapping 2-D blobs on a deterministic lattice — overlap
    // makes fold scores non-trivial so the grid selection is exercised.
    let mut samples = Vec::new();
    for i in 0..30 {
        let dx = (i % 5) as f64 * 0.06;
        let dy = (i / 5) as f64 * 0.06;
        samples.push(Sample::new(vec![0.1 + dx, 0.15 + dy], 1.0, 1.0));
        samples.push(Sample::new(vec![0.45 + dx, 0.4 + dy], -1.0, 1.0));
    }
    TrainSet::new(samples).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn from_sets_parallel_matches_serial(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u8..60, 0..6),
            0..25,
        ),
        threads in 2usize..6,
    ) {
        let _guard = lock();
        let items: Vec<Vec<u8>> =
            sets.into_iter().map(|s| s.into_iter().collect()).collect();
        let serial = DistanceMatrix::from_sets(&items, |a, b| jaccard_dissimilarity(a, b));
        let parallel = with_threads(threads, || {
            DistanceMatrix::from_sets_parallel(&items, |a, b| jaccard_dissimilarity(a, b))
        });
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn grid_search_selects_identical_config_across_thread_counts() {
    let _guard = lock();
    let set = blob_set();
    let gs = GridSearch { folds: 4, ..Default::default() };
    let serial = with_threads(1, || gs.run(&set));
    for threads in [2, 4, 7] {
        let parallel = with_threads(threads, || gs.run(&set));
        // GridSearchResult compares (λ, σ², accuracy) — the accuracy
        // equality is the bit-identical float reduction guarantee.
        assert_eq!(serial, parallel, "thread count {threads} diverged");
    }
}

#[test]
fn wsvm_training_is_identical_across_thread_counts() {
    let _guard = lock();
    let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
    let d = Dataset::materialize(scenario, &GenParams::small(), 21).unwrap();
    let (train, test) = d.split_benign(0.5, 1);
    let evaluate = || {
        train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7)
            .evaluate(&test, &d.malicious)
    };
    let cm1 = with_threads(1, evaluate);
    let cm4 = with_threads(4, evaluate);
    assert_eq!(cm1, cm4);
}

#[test]
fn leaps_threads_env_var_reaches_the_pool() {
    let _guard = lock();
    // No override active: the env var must drive the thread count, and
    // the parallel result must still match the serial builder.
    par::set_thread_override(None);
    std::env::set_var("LEAPS_THREADS", "3");
    assert_eq!(par::thread_count(), 3);
    let items: Vec<Vec<u32>> = (0..12).map(|i| (0..=(i % 4)).collect()).collect();
    let enved = DistanceMatrix::from_sets_parallel(&items, |a, b| jaccard_dissimilarity(a, b));
    std::env::remove_var("LEAPS_THREADS");
    let serial = DistanceMatrix::from_sets(&items, |a, b| jaccard_dissimilarity(a, b));
    assert_eq!(serial, enved);
}
