//! Parallel/serial equivalence: every `leaps_par` fan-out (kernel
//! matrix, CV grid, pairwise distances, UPGMA dendrogram merging,
//! Baum–Welch) must be bit-identical to the serial path at any thread
//! count, including grid-search and closest-pair tie-breaking.

use leaps::cluster::dissim::{jaccard_dissimilarity, DistanceMatrix};
use leaps::cluster::hier::{Dendrogram, Linkage};
use leaps::core::config::PipelineConfig;
use leaps::core::dataset::Dataset;
use leaps::core::par;
use leaps::core::pipeline::{train_classifier, Method};
use leaps::etw::rng::SimRng;
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::hmm::hmm::{Hmm, HmmParams};
use leaps::svm::cv::GridSearch;
use leaps::svm::data::{Sample, TrainSet};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that mutate the process-global thread override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` with the thread count forced to `threads`, restoring the
/// default afterwards.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    par::set_thread_override(Some(threads));
    let out = f();
    par::set_thread_override(None);
    out
}

fn blob_set() -> TrainSet {
    // Two overlapping 2-D blobs on a deterministic lattice — overlap
    // makes fold scores non-trivial so the grid selection is exercised.
    let mut samples = Vec::new();
    for i in 0..30 {
        let dx = (i % 5) as f64 * 0.06;
        let dy = (i / 5) as f64 * 0.06;
        samples.push(Sample::new(vec![0.1 + dx, 0.15 + dy], 1.0, 1.0));
        samples.push(Sample::new(vec![0.45 + dx, 0.4 + dy], -1.0, 1.0));
    }
    TrainSet::new(samples).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn from_sets_parallel_matches_serial(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u8..60, 0..6),
            0..25,
        ),
        threads in 2usize..6,
    ) {
        let _guard = lock();
        let items: Vec<Vec<u8>> =
            sets.into_iter().map(|s| s.into_iter().collect()).collect();
        let serial = DistanceMatrix::from_sets(&items, |a, b| jaccard_dissimilarity(a, b));
        let parallel = with_threads(threads, || {
            DistanceMatrix::from_sets_parallel(&items, |a, b| jaccard_dissimilarity(a, b))
        });
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn grid_search_selects_identical_config_across_thread_counts() {
    let _guard = lock();
    let set = blob_set();
    let gs = GridSearch { folds: 4, ..Default::default() };
    let serial = with_threads(1, || gs.run(&set));
    for threads in [2, 4, 7] {
        let parallel = with_threads(threads, || gs.run(&set));
        // GridSearchResult compares (λ, σ², accuracy) — the accuracy
        // equality is the bit-identical float reduction guarantee.
        assert_eq!(serial, parallel, "thread count {threads} diverged");
    }
}

#[test]
fn wsvm_training_is_identical_across_thread_counts() {
    let _guard = lock();
    let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
    let d = Dataset::materialize(scenario, &GenParams::small(), 21).unwrap();
    let (train, test) = d.split_benign(0.5, 1);
    let evaluate = || {
        train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7)
            .evaluate(&test, &d.malicious)
    };
    let cm1 = with_threads(1, evaluate);
    let cm4 = with_threads(4, evaluate);
    assert_eq!(cm1, cm4);
}

/// Deterministic pseudo-random distance matrix with quantized values,
/// so closest-pair ties occur and exercise the smallest-index
/// tie-break at every thread count.
fn synthetic_dm(n: usize, seed: u64) -> DistanceMatrix {
    let mut rng = SimRng::new(seed);
    let data: Vec<f64> = (0..n * (n - 1) / 2).map(|_| (rng.f64() * 16.0).floor() / 16.0).collect();
    DistanceMatrix::from_condensed(n, data)
}

#[test]
fn dendrogram_merges_identical_across_thread_counts() {
    let _guard = lock();
    let dm = synthetic_dm(80, 11);
    for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
        let serial = with_threads(1, || Dendrogram::build(&dm, linkage));
        // The retired full-rescan implementation is the oracle.
        assert_eq!(serial, Dendrogram::build_rescan(&dm, linkage), "{linkage:?} vs oracle");
        for threads in [2, 4, 8] {
            let parallel = with_threads(threads, || Dendrogram::build(&dm, linkage));
            assert_eq!(serial, parallel, "{linkage:?} at {threads} threads");
        }
    }
}

#[test]
fn dendrogram_with_nan_distances_identical_across_thread_counts() {
    let _guard = lock();
    // Every 5th distance is NaN — the degraded-telemetry shape that
    // used to panic. Merge distances compare by bit pattern.
    let mut rng = SimRng::new(3);
    let n = 40;
    let data: Vec<f64> =
        (0..n * (n - 1) / 2).map(|k| if k % 5 == 0 { f64::NAN } else { rng.f64() }).collect();
    let dm = DistanceMatrix::from_condensed(n, data);
    let serial = with_threads(1, || Dendrogram::build(&dm, Linkage::Average));
    assert_eq!(serial.merges().len(), n - 1);
    for threads in [2, 4, 8] {
        let parallel = with_threads(threads, || Dendrogram::build(&dm, Linkage::Average));
        for (a, b) in serial.merges().iter().zip(parallel.merges()) {
            assert_eq!((a.left, a.right, a.size), (b.left, b.right, b.size));
            assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "{threads} threads");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn dendrogram_build_matches_serial_for_random_matrices(
        seed in 0u64..1000,
        n in 2usize..40,
        threads in 2usize..9,
    ) {
        let _guard = lock();
        let dm = synthetic_dm(n, seed);
        let serial = with_threads(1, || Dendrogram::build(&dm, Linkage::Average));
        let parallel = with_threads(threads, || Dendrogram::build(&dm, Linkage::Average));
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial, &Dendrogram::build_rescan(&dm, Linkage::Average));
    }
}

/// Deterministic symbol sequences with a state-ish structure, varying
/// lengths so the per-sequence E-step work is skewed across threads.
fn synthetic_sequences(count: usize, symbols: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = SimRng::new(seed);
    (0..count)
        .map(|i| {
            let len = 20 + (i * 13) % 40;
            (0..len).map(|_| rng.below(symbols)).collect()
        })
        .collect()
}

#[test]
fn hmm_training_identical_across_thread_counts() {
    let _guard = lock();
    let seqs = synthetic_sequences(12, 6, 42);
    let params = HmmParams::default();
    let serial = with_threads(1, || Hmm::train(&seqs, 6, &params));
    let (pi1, a1, b1) = serial.parts();
    for threads in [2, 4, 8] {
        let parallel = with_threads(threads, || Hmm::train(&seqs, 6, &params));
        let (pi2, a2, b2) = parallel.parts();
        for (name, x, y) in [("pi", pi1, pi2), ("a", a1, a2), ("b", b1, b2)] {
            assert_eq!(x.len(), y.len());
            for (v, w) in x.iter().zip(y) {
                assert_eq!(v.to_bits(), w.to_bits(), "{name} diverged at {threads} threads");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn hmm_training_matches_serial_for_random_corpora(
        seed in 0u64..500,
        count in 1usize..10,
        symbols in 2usize..8,
        threads in 2usize..9,
    ) {
        let _guard = lock();
        let seqs = synthetic_sequences(count, symbols, seed);
        let params = HmmParams { states: 4, iterations: 5, ..HmmParams::default() };
        let serial = with_threads(1, || Hmm::train(&seqs, symbols, &params));
        let parallel = with_threads(threads, || Hmm::train(&seqs, symbols, &params));
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn hmm_classifier_verdicts_identical_across_thread_counts() {
    let _guard = lock();
    let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
    let d = Dataset::materialize(scenario, &GenParams::small(), 21).unwrap();
    let (train, test) = d.split_benign(0.5, 1);
    let evaluate = || {
        train_classifier(Method::Hmm, &train, &d.mixed, &PipelineConfig::fast(), 7)
            .evaluate(&test, &d.malicious)
    };
    let serial = with_threads(1, evaluate);
    for threads in [2, 4, 8] {
        assert_eq!(serial, with_threads(threads, evaluate), "thread count {threads} diverged");
    }
}

#[test]
fn leaps_threads_env_var_reaches_the_pool() {
    let _guard = lock();
    // No override active: the env var must drive the thread count, and
    // the parallel result must still match the serial builder.
    par::set_thread_override(None);
    std::env::set_var("LEAPS_THREADS", "3");
    assert_eq!(par::thread_count(), 3);
    let items: Vec<Vec<u32>> = (0..12).map(|i| (0..=(i % 4)).collect()).collect();
    let enved = DistanceMatrix::from_sets_parallel(&items, |a, b| jaccard_dissimilarity(a, b));
    std::env::remove_var("LEAPS_THREADS");
    let serial = DistanceMatrix::from_sets(&items, |a, b| jaccard_dissimilarity(a, b));
    assert_eq!(serial, enved);
}
