//! Bit-identity of result-path iteration: every structure that feeds a
//! persisted artifact, a wire reply or a downstream computation must
//! iterate in an order independent of how it was built. These tests
//! construct the same logical value via differently-ordered insertions
//! and assert the observed sequences are identical — exactly what
//! hash-ordered maps do not guarantee (and what the `hash-iter-order`
//! lint now rejects statically).

use leaps::cfg::align::assess_weights_aligned;
use leaps::cfg::infer::infer_cfg;
use leaps::cfg::weight::WeightAssessment;
use leaps::cgraph::graph::CallGraph;
use leaps::etw::addr::Va;
use leaps::etw::event::{EventType, StackFrame};
use leaps::hmm::classify::SymbolTable;
use leaps::trace::partition::PartitionedEvent;

fn sys_event(num: u64, syms: &[(&str, &str)]) -> PartitionedEvent {
    PartitionedEvent {
        num,
        etype: EventType::FileRead,
        tid: 1,
        app_stack: vec![StackFrame::new("app", "main", Va(0x1000), true)],
        system_stack: syms
            .iter()
            .enumerate()
            .map(|(i, &(m, f))| StackFrame::new(m, f, Va(0x7000 + i as u64), false))
            .collect(),
        truth: None,
    }
}

#[test]
fn callgraph_persisted_iteration_is_insertion_order_independent() {
    let events = [
        sys_event(1, &[("kernel32", "ReadFile"), ("ntdll", "NtReadFile")]),
        sys_event(2, &[("ws2_32", "send"), ("ntdll", "NtDeviceIoControlFile")]),
        sys_event(3, &[("advapi32", "RegOpenKeyExW"), ("ntdll", "NtOpenKey")]),
        sys_event(4, &[("kernel32", "WriteFile"), ("ntdll", "NtWriteFile")]),
    ];
    let forward = CallGraph::from_events(events.iter());
    let reversed = CallGraph::from_events(events.iter().rev());
    let fwd_edges: Vec<_> = forward.edges().collect();
    let rev_edges: Vec<_> = reversed.edges().collect();
    assert_eq!(fwd_edges, rev_edges, "persisted edge order must not depend on insertion order");
    assert!(fwd_edges.windows(2).all(|w| w[0] <= w[1]), "edges iterate sorted");
    let fwd_chains: Vec<_> = forward.chains().collect();
    let rev_chains: Vec<_> = reversed.chains().collect();
    assert_eq!(fwd_chains, rev_chains);
    assert!(fwd_chains.windows(2).all(|w| w[0] <= w[1]), "chains iterate sorted");
}

#[test]
fn weight_assessment_iterates_in_event_order_regardless_of_input_order() {
    let means = [(9u64, 0.25), (1, 1.0), (5, 0.5), (3, 0.75)];
    let forward = WeightAssessment::from_means(means);
    let reversed = WeightAssessment::from_means(means.iter().rev().copied());
    let a: Vec<_> = forward.iter().collect();
    let b: Vec<_> = reversed.iter().collect();
    assert_eq!(a, b);
    assert_eq!(a.first(), Some(&(1u64, 1.0)), "iteration starts at the smallest event");
    assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "strictly increasing event numbers");
}

#[test]
fn symbol_table_persisted_entries_are_sorted_and_order_independent() {
    let entries = [((3u32, 1u32, 4u32), 0usize), ((1, 5, 9), 1), ((2, 6, 5), 2)];
    let forward = SymbolTable::from_entries(entries);
    let reversed = SymbolTable::from_entries(entries.iter().rev().copied());
    let a: Vec<_> = forward.entries().map(|(k, v)| (*k, v)).collect();
    let b: Vec<_> = reversed.entries().map(|(k, v)| (*k, v)).collect();
    assert_eq!(a, b, "persisted symbol order must not depend on intern order");
    assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "entries iterate in observation order");
}

fn app_event(num: u64, addrs: &[u64]) -> PartitionedEvent {
    PartitionedEvent {
        num,
        etype: EventType::FileRead,
        tid: 1,
        app_stack: addrs
            .iter()
            .map(|&a| StackFrame::new("app", format!("f{a}"), Va(a), true))
            .collect(),
        system_stack: Vec::new(),
        truth: None,
    }
}

#[test]
fn aligned_assessment_is_bit_identical_across_runs() {
    let benign = infer_cfg(&[
        app_event(1, &[0x1000, 0x1010, 0x1011]),
        app_event(2, &[0x1000, 0x1020, 0x1021]),
        app_event(3, &[0x1000, 0x1010, 0x1012]),
    ]);
    let mixed = infer_cfg(&[
        app_event(1, &[0x9000, 0x9010, 0x9011]),
        app_event(2, &[0x9000, 0x9020, 0x9021]),
        app_event(3, &[0x9000, 0x9010, 0x9012]),
        app_event(4, &[0x9000, 0x9010, 0xf000, 0xf001]),
    ]);
    // Two full runs over WL hashing, unique-signature matching and the
    // per-event mean accumulation: every f64 must come out identical.
    let first: Vec<(u64, f64)> = assess_weights_aligned(&benign, &mixed).iter().collect();
    let second: Vec<(u64, f64)> = assess_weights_aligned(&benign, &mixed).iter().collect();
    assert_eq!(first.len(), 4);
    for ((na, va), (nb, vb)) in first.iter().zip(&second) {
        assert_eq!(na, nb);
        assert_eq!(va.to_bits(), vb.to_bits(), "event {na}: {va} vs {vb}");
    }
}
