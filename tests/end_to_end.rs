//! End-to-end integration: raw log text → parser → partition → CFG →
//! clustering → weighted SVM → metrics, across crate boundaries.

use leaps::core::config::PipelineConfig;
use leaps::core::dataset::Dataset;
use leaps::core::pipeline::{train_classifier, Classifier, Method};
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::trace::parser::parse_log;

fn fast_config() -> PipelineConfig {
    PipelineConfig::fast()
}

#[test]
fn every_table1_scenario_materializes_through_the_full_front_end() {
    for scenario in Scenario::table1() {
        let dataset = Dataset::materialize(scenario, &GenParams::small(), 5)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name()));
        assert!(!dataset.benign.is_empty(), "{}", scenario.name());
        assert!(!dataset.mixed.is_empty());
        assert!(!dataset.malicious.is_empty());
        // Every event survived partitioning with both stack sides.
        for e in dataset.benign.iter().take(20) {
            assert!(!e.app_stack.is_empty());
            assert!(!e.system_stack.is_empty());
        }
    }
}

#[test]
fn wsvm_end_to_end_detects_an_offline_trojan() {
    let dataset =
        Dataset::materialize(Scenario::by_name("vim_reverse_tcp").unwrap(), &GenParams::small(), 9)
            .unwrap();
    let (train, test) = dataset.split_benign(0.5, 9);
    let classifier = train_classifier(Method::Wsvm, &train, &dataset.mixed, &fast_config(), 9);
    let metrics = classifier.evaluate(&test, &dataset.malicious).metrics();
    assert!(metrics.acc > 0.6, "{metrics}");
    assert!(metrics.tnr > 0.5, "{metrics}");
}

#[test]
fn wsvm_end_to_end_detects_an_online_injection() {
    let dataset = Dataset::materialize(
        Scenario::by_name("winscp_reverse_https_online").unwrap(),
        &GenParams::small(),
        9,
    )
    .unwrap();
    let (train, test) = dataset.split_benign(0.5, 9);
    let classifier = train_classifier(Method::Wsvm, &train, &dataset.mixed, &fast_config(), 9);
    let metrics = classifier.evaluate(&test, &dataset.malicious).metrics();
    assert!(metrics.acc > 0.6, "{metrics}");
}

#[test]
fn all_three_methods_produce_complete_confusion_matrices() {
    let dataset = Dataset::materialize(
        Scenario::by_name("putty_codeinject").unwrap(),
        &GenParams::small(),
        3,
    )
    .unwrap();
    let (train, test) = dataset.split_benign(0.5, 3);
    for method in Method::EXTENDED {
        let classifier = train_classifier(method, &train, &dataset.mixed, &fast_config(), 3);
        let cm = classifier.evaluate(&test, &dataset.malicious);
        match classifier {
            Classifier::CGraph(_) => {
                assert_eq!(cm.total(), test.len() + dataset.malicious.len());
            }
            Classifier::Svm(_) | Classifier::Hmm(_) => {
                // SVM-family and HMM methods score per coalesced window.
                assert!(cm.total() > 0);
                assert!(cm.total() < test.len() + dataset.malicious.len());
            }
        }
    }
}

#[test]
fn generated_raw_logs_reparse_identically() {
    // The writer and parser agree byte-for-byte on a roundtrip.
    let raw = Scenario::by_name("chrome_reverse_tcp").unwrap().generate(&GenParams::small(), 4);
    for log in [&raw.benign, &raw.mixed, &raw.malicious] {
        let parsed = parse_log(log).expect("parse");
        let rewritten = {
            // Rebuild SysEvents from parsed records to re-serialize.
            use leaps::etw::event::SysEvent;
            let events: Vec<SysEvent> = parsed
                .events
                .iter()
                .map(|e| SysEvent {
                    num: e.num,
                    etype: e.etype,
                    pid: e.pid,
                    tid: e.tid,
                    timestamp: e.timestamp,
                    frames: e.frames.clone(),
                    truth: e.truth.expect("generated logs carry provenance"),
                })
                .collect();
            leaps::etw::logfmt::write_log(&events)
        };
        assert_eq!(log, &rewritten);
    }
}

#[test]
fn classifier_generalizes_across_fresh_data_from_same_scenario() {
    // Train on one seed's dataset, test on a different seed's logs — the
    // application model is the same (seeded by scenario+app), but the
    // executions differ.
    let scenario = Scenario::by_name("vim_reverse_https").unwrap();
    let train_data = Dataset::materialize(scenario, &GenParams::small(), 11).unwrap();
    let (train, _) = train_data.split_benign(0.5, 11);
    let classifier = train_classifier(Method::Wsvm, &train, &train_data.mixed, &fast_config(), 11);

    // Note: a different master seed changes the program layout too, so we
    // reuse the same seed but evaluate on the held-out benign half plus
    // the full malicious log — data the classifier never trained on.
    let (_, test) = train_data.split_benign(0.5, 11);
    let metrics = classifier.evaluate(&test, &train_data.malicious).metrics();
    assert!(metrics.acc > 0.55, "{metrics}");
}

#[test]
fn system_wide_trace_slices_back_into_per_application_streams() {
    use leaps::etw::logfmt::write_log;
    use leaps::etw::scenario::generate_system_trace;
    use leaps::trace::slicing::{process_ids, slice_by_process};

    let scenarios = [
        Scenario::by_name("vim_reverse_tcp").unwrap(),
        Scenario::by_name("putty_reverse_https_online").unwrap(),
        Scenario::by_name("chrome_reverse_tcp").unwrap(),
    ];
    let trace = generate_system_trace(&scenarios, &GenParams::small(), 3);
    assert_eq!(trace.len(), 3 * GenParams::small().mixed_events);
    // Timestamps merged; numbering global and dense.
    assert!(trace.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    assert!(trace.iter().enumerate().all(|(i, e)| e.num == i as u64 + 1));

    // Through the real front end: serialize, parse, slice per process.
    let parsed = parse_log(&write_log(&trace)).unwrap();
    assert_eq!(process_ids(&parsed), vec![0x1000, 0x1001, 0x1002]);
    let slices = slice_by_process(&parsed);
    for (pid, events) in &slices {
        assert_eq!(events.len(), GenParams::small().mixed_events, "pid {pid:#x}");
        // Order within each process preserved (timestamps ascending).
        assert!(events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }
}

#[test]
fn classifier_saved_and_loaded_detects_identically() {
    use leaps::core::persist::{load_classifier, save_classifier};

    let dataset = Dataset::materialize(
        Scenario::by_name("putty_reverse_tcp").unwrap(),
        &GenParams::small(),
        13,
    )
    .unwrap();
    let (train, test) = dataset.split_benign(0.5, 13);
    for method in Method::EXTENDED {
        let original = train_classifier(method, &train, &dataset.mixed, &fast_config(), 13);
        let loaded = load_classifier(&save_classifier(&original)).expect("roundtrip");
        assert_eq!(
            original.evaluate(&test, &dataset.malicious),
            loaded.evaluate(&test, &dataset.malicious),
            "{method:?}"
        );
    }
}
