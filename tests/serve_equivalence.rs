//! Service/standalone equivalence: N interleaved sessions through an
//! in-process `leaps_serve::Server` must produce **bit-identical**
//! per-session verdict sequences — scores, flags and degraded markers —
//! to N standalone `StreamDetector`s fed the same events in the same
//! order, including sessions whose telemetry was damaged by
//! `leaps-faults` injection.

use leaps::core::config::PipelineConfig;
use leaps::core::persist::{load_classifier, save_classifier};
use leaps::core::pipeline::{try_train_classifier, Classifier, Method};
use leaps::core::stream::{StreamDetector, Verdict};
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::faults::inject::inject;
use leaps::faults::plan::FaultPlan;
use leaps::serve::{BufferSink, Server, ServerConfig, Submit, VerdictSink};
use leaps::trace::parser::{parse_log, parse_log_lenient};
use leaps::trace::partition::{partition_events, PartitionedEvent};
use std::path::PathBuf;
use std::sync::Arc;

const SESSIONS: usize = 8;

fn events_of(raw: &str) -> Vec<PartitionedEvent> {
    partition_events(&parse_log(raw).expect("scenario logs parse").events)
}

fn train(method: Method, benign: &[PartitionedEvent], mixed: &[PartitionedEvent]) -> Classifier {
    try_train_classifier(method, benign, mixed, &PipelineConfig::fast(), 7)
        .expect("training succeeds on scenario data")
}

/// Per-session event streams: clean mixed/malicious slices plus
/// fault-injected variants recovered leniently (sequence gaps and damage
/// that must surface as degraded verdicts on both sides).
fn session_streams(scenario: &Scenario) -> Vec<Vec<PartitionedEvent>> {
    let logs = scenario.generate(&GenParams::small(), 0x5e55);
    let mut streams = Vec::new();
    for i in 0..SESSIONS {
        let raw = if i % 2 == 0 { &logs.mixed } else { &logs.malicious };
        let events = if i % 3 == 2 {
            // Damaged telemetry path: drop/corrupt records, recover
            // leniently — exactly what a degraded producer would ship.
            let (faulted, stats) = inject(raw, &FaultPlan::uniform(0.08), 11 + i as u64);
            assert!(stats.total_faults() > 0, "injection plan must bite");
            partition_events(&parse_log_lenient(&faulted).events)
        } else {
            events_of(raw)
        };
        assert!(!events.is_empty());
        streams.push(events);
    }
    streams
}

#[test]
fn interleaved_sessions_match_standalone_detectors_bit_for_bit() {
    let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
    let logs = scenario.generate(&GenParams::small(), 0x1ea5);
    let benign = events_of(&logs.benign);
    let mixed = events_of(&logs.mixed);

    // Two real trained models in the registry directory: sessions
    // alternate between the windowed WSVM and the per-event call-graph
    // model, so both verdict shapes cross the service.
    let dir: PathBuf =
        std::env::temp_dir().join(format!("leaps-serve-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, method) in [("wsvm", Method::Wsvm), ("cgraph", Method::CGraph)] {
        let text = save_classifier(&train(method, &benign, &mixed));
        std::fs::write(dir.join(format!("{name}.model")), text).unwrap();
    }

    let streams = session_streams(&scenario);
    let server = Server::new(&ServerConfig {
        queue_cap: 1 << 20, // no shedding: this test is about equivalence
        workers: 4,
        ..ServerConfig::new(&dir)
    });
    let sinks: Vec<Arc<BufferSink>> = (0..SESSIONS).map(|_| Arc::new(BufferSink::new())).collect();
    let model_of = |i: usize| if i.is_multiple_of(2) { "wsvm" } else { "cgraph" };
    for (i, sink) in sinks.iter().enumerate() {
        let sink = Arc::clone(sink) as Arc<dyn VerdictSink>;
        server.open("equiv", i as u32, model_of(i), sink).unwrap();
    }

    // Round-robin interleaving: one event per session per round, so the
    // worker pool always has concurrent sessions in flight.
    let longest = streams.iter().map(Vec::len).max().unwrap();
    for n in 0..longest {
        for (i, stream) in streams.iter().enumerate() {
            if let Some(event) = stream.get(n) {
                let outcome = server.submit("equiv", i as u32, event.clone()).unwrap();
                assert!(matches!(outcome, Submit::Accepted { .. }), "queue_cap rules out BUSY");
            }
        }
    }

    let mut degraded_sessions = 0;
    for (i, (sink, stream)) in sinks.iter().zip(&streams).enumerate() {
        let report = server.close("equiv", i as u32).unwrap();
        assert_eq!(report.submitted, stream.len() as u64);
        assert_eq!(report.shed, 0);

        // The standalone detector loads the same persisted model file —
        // the service must not change a single bit of any verdict.
        let text = std::fs::read_to_string(dir.join(format!("{}.model", model_of(i)))).unwrap();
        let mut standalone = StreamDetector::new(load_classifier(&text).unwrap());
        let expected: Vec<Verdict> = standalone.push_all(stream.iter().cloned());
        let got = sink.take();
        assert_eq!(got, expected, "session {i} diverged from standalone");
        assert_eq!(report.verdicts, expected.len() as u64);
        assert_eq!(report.stream, standalone.stats(), "telemetry counters diverged");
        if got.iter().any(|v| v.degraded) {
            degraded_sessions += 1;
        }
    }
    assert!(
        degraded_sessions > 0,
        "fault-injected sessions must exercise the degraded-verdict path"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
