//! The paper's headline claim, as a test: on camouflaged-attack datasets,
//! the CFG-guided Weighted SVM outperforms both the plain SVM and the
//! call-graph baseline.
//!
//! Run at a reduced scale (1200-event logs, 2 runs) to keep CI time
//! reasonable; the full-scale comparison is the `fig6`/`fig7` harness.

use leaps::core::experiment::Experiment;
use leaps::core::pipeline::Method;
use leaps::etw::scenario::{GenParams, Scenario};

fn experiment() -> Experiment {
    Experiment {
        gen: GenParams {
            benign_events: 1200,
            mixed_events: 1200,
            malicious_events: 600,
            benign_ratio: 0.5,
        },
        runs: 2,
        ..Experiment::default()
    }
}

/// WSVM must beat plain SVM on accuracy on these representative datasets
/// (one per app/attack-method group).
#[test]
fn wsvm_beats_svm_on_representative_datasets() {
    let experiment = experiment();
    for name in ["winscp_reverse_tcp", "vim_codeinject", "putty_reverse_https_online"] {
        let scenario = Scenario::by_name(name).unwrap();
        let svm = experiment.run(scenario, Method::Svm).unwrap();
        let wsvm = experiment.run(scenario, Method::Wsvm).unwrap();
        assert!(wsvm.acc > svm.acc, "{name}: WSVM {} should beat SVM {}", wsvm.acc, svm.acc);
    }
}

/// WSVM must beat the call-graph model on accuracy.
#[test]
fn wsvm_beats_cgraph_on_representative_datasets() {
    let experiment = experiment();
    for name in ["winscp_reverse_tcp", "putty_reverse_https_online"] {
        let scenario = Scenario::by_name(name).unwrap();
        let cgraph = experiment.run(scenario, Method::CGraph).unwrap();
        let wsvm = experiment.run(scenario, Method::Wsvm).unwrap();
        assert!(
            wsvm.acc > cgraph.acc,
            "{name}: WSVM {} should beat CGraph {}",
            wsvm.acc,
            cgraph.acc
        );
    }
}

/// The CFG guidance specifically repairs benign recall (TPR), which is
/// what the noisy negatives destroy — the paper's Figure 5 story.
#[test]
fn cfg_guidance_improves_benign_recall() {
    let experiment = experiment();
    let scenario = Scenario::by_name("winscp_reverse_tcp").unwrap();
    let svm = experiment.run(scenario, Method::Svm).unwrap();
    let wsvm = experiment.run(scenario, Method::Wsvm).unwrap();
    assert!(wsvm.tpr > svm.tpr, "WSVM TPR {} should exceed SVM TPR {}", wsvm.tpr, svm.tpr);
}

/// All methods detect *something*: even the weakest baseline is far from
/// degenerate on a dataset with a distinctive payload.
#[test]
fn every_method_is_better_than_chance_on_an_easy_dataset() {
    let experiment = experiment();
    let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
    for method in Method::ALL {
        let m = experiment.run(scenario, method).unwrap();
        assert!(m.acc > 0.5, "{method:?}: {m}");
    }
}
